"""Wire protocol for distributed task execution: specs, args, HTTP helpers.

A :class:`~repro.eval.taskgraph.Task` cannot cross a machine boundary as a
Python object (its ``fn`` is a function reference and its args hold config
dataclasses), so the coordinator ships a small JSON *task spec* instead:

```
{"task_id": "sweep:latency:mips:8", "kind": "runtime",
 "fn": "compute_runtime_point", "args": [...], "key": "ab12…",
 "serializer": "json", "attempt": 1}
```

* ``fn`` names an entry in :data:`PAYLOAD_FUNCTIONS` — a closed allowlist of
  the pure, module-level payload functions the local pool already uses.  A
  worker never evaluates arbitrary callables from the wire; an unknown name
  is a :class:`~repro.errors.RemoteProtocolError`.
* ``args`` are JSON with three tagged extensions: ``CompilerConfig`` and
  ``RuntimeConfig`` travel as their ``to_dict()`` forms (round-tripping
  preserves ``content_hash()``, so workers compute identical cache keys),
  and the parent's cache spec is replaced by a placeholder each worker
  substitutes with its *own* ``--cache-dir`` spec — the parent's local path
  is meaningless on another host.

The tiny ``http_post_json``/``http_get_json`` helpers keep the coordinator
client, cache client and worker daemon on one code path for JSON-over-HTTP.
"""

from __future__ import annotations

import hmac
import http.client
import json
import os
import ssl
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Optional, Tuple

from repro.config import CompilerConfig, RuntimeConfig
from repro.errors import RemoteError, RemoteProtocolError
from repro.eval import experiments, taskgraph
from repro.explore import evaluate as explore_evaluate
from repro.ingest import evaluate as ingest_evaluate
from repro.obs import tracing as obs_tracing

#: The closed set of payload functions a worker will execute, by wire name.
#: :func:`register_payload_function` may extend it (tests, future sweeps).
PAYLOAD_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "compute_compile": taskgraph.compute_compile,
    "compute_runtime_point": taskgraph.compute_runtime_point,
    "compute_split_point": taskgraph.compute_split_point,
    "compute_explore_point": explore_evaluate.compute_explore_point,
    "compute_ingest_report": ingest_evaluate.compute_ingest_report,
    "compute_figure_render": experiments.compute_figure_render,
}

_FUNCTION_NAMES: Dict[Callable[..., Any], str] = {fn: name for name, fn in PAYLOAD_FUNCTIONS.items()}

#: Marker object replacing the parent's cache spec inside encoded args.
_CACHE_SPEC_TAG = "cache_spec"

#: "The HTTP conversation failed at the transport level" — refused or reset
#: connections (``URLError`` is an ``OSError``), and responses truncated by a
#: peer exiting mid-reply (``IncompleteRead`` etc. are ``HTTPException``,
#: *not* ``OSError``).  Retry/degrade paths must catch both.
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


def register_payload_function(name: str, fn: Callable[..., Any]) -> None:
    """Add a payload function to the wire allowlist (both directions)."""
    PAYLOAD_FUNCTIONS[name] = fn
    _FUNCTION_NAMES[fn] = name


def payload_name(fn: Callable[..., Any]) -> Optional[str]:
    """The wire name of *fn*, or ``None`` when it is not distributable."""
    return _FUNCTION_NAMES.get(fn)


# -- argument encoding ----------------------------------------------------------


def encode_arg(value: Any, cache_spec: Optional[str]) -> Any:
    """One task argument → its JSON wire form (sequences recurse)."""
    if isinstance(value, CompilerConfig):
        return {"__repro__": "compiler_config", "data": value.to_dict()}
    if isinstance(value, RuntimeConfig):
        return {"__repro__": "runtime_config", "data": value.to_dict()}
    if isinstance(value, str) and cache_spec is not None and value == cache_spec:
        return {"__repro__": _CACHE_SPEC_TAG}
    if isinstance(value, (list, tuple)):
        # Render tasks carry dependency id/key lists; tuples become JSON
        # arrays (payloads re-tuple where identity matters).
        return [encode_arg(item, cache_spec) for item in value]
    if isinstance(value, dict):
        # Explore tasks carry candidate-parameter and space dicts.  Plain
        # string-keyed dicts pass through as JSON objects; the tag key is
        # reserved for the extensions above.
        if "__repro__" in value:
            raise RemoteProtocolError("task argument dicts must not use the '__repro__' key")
        if not all(isinstance(k, str) for k in value):
            raise RemoteProtocolError("task argument dicts must have string keys")
        return {k: encode_arg(v, cache_spec) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise RemoteProtocolError(
        f"cannot encode task argument of type {type(value).__name__} for the wire"
    )


def decode_arg(value: Any, cache_spec: Optional[str]) -> Any:
    """Inverse of :func:`encode_arg`; *cache_spec* is the decoder's own cache."""
    if isinstance(value, dict) and "__repro__" in value:
        tag = value["__repro__"]
        if tag == "compiler_config":
            return CompilerConfig.from_dict(value["data"])
        if tag == "runtime_config":
            return RuntimeConfig.from_dict(value["data"])
        if tag == _CACHE_SPEC_TAG:
            return cache_spec
        raise RemoteProtocolError(f"unknown wire tag '{tag}'")
    if isinstance(value, dict):
        return {k: decode_arg(v, cache_spec) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_arg(item, cache_spec) for item in value]
    return value


# -- task specs -----------------------------------------------------------------


def encode_task(task: "taskgraph.Task", cache_spec: Optional[str]) -> Dict[str, Any]:
    """A :class:`~repro.eval.taskgraph.Task` → its JSON wire spec.

    Raises :class:`RemoteProtocolError` for tasks that cannot be
    distributed: unregistered payload functions, or key-less tasks (a remote
    worker can only hand results back through the content-addressed cache).
    """
    name = payload_name(task.fn)
    if name is None:
        raise RemoteProtocolError(
            f"task '{task.task_id}' uses an unregistered payload function "
            f"{getattr(task.fn, '__name__', task.fn)!r} and cannot be distributed"
        )
    if task.key is None:
        raise RemoteProtocolError(
            f"task '{task.task_id}' has no content key; remote workers publish "
            "results through the cache and need one"
        )
    spec = {
        "task_id": task.task_id,
        "kind": task.kind,
        "fn": name,
        "args": [encode_arg(a, cache_spec) for a in task.args],
        "key": task.key,
        "serializer": task.serializer,
    }
    if task.workload is not None:
        # Advisory only: the coordinator's cost-ordered lease queue weighs
        # specs by (kind, workload); execution never depends on it.
        spec["workload"] = task.workload
    trace_context = obs_tracing.wire_context()
    if trace_context is not None:
        # Workers long-poll, so trace context cannot ride request headers on
        # the coordinator→worker hop; it rides the spec instead and the
        # worker re-parents its task span under the submitting scheduler.
        spec["trace"] = trace_context
    return spec


def decode_task(
    spec: Dict[str, Any], cache_spec: Optional[str]
) -> Tuple[str, Callable[..., Any], Tuple[Any, ...], str, str]:
    """A wire spec → ``(task_id, fn, args, key, serializer)`` for execution."""
    try:
        name = spec["fn"]
        task_id = spec["task_id"]
        key = spec["key"]
        serializer = spec["serializer"]
        raw_args = spec["args"]
    except (KeyError, TypeError) as exc:
        raise RemoteProtocolError(f"malformed task spec: missing {exc}") from None
    fn = PAYLOAD_FUNCTIONS.get(name)
    if fn is None:
        raise RemoteProtocolError(f"task '{task_id}' names unknown payload function '{name}'")
    args = tuple(decode_arg(a, cache_spec) for a in raw_args)
    return task_id, fn, args, key, serializer


# -- shared-secret service auth --------------------------------------------------

#: Environment variable supplying the shared service secret.
SERVICE_TOKEN_ENV = "REPRO_SERVICE_TOKEN"

#: Header carrying the secret on every cache-service and coordinator request.
TOKEN_HEADER = "X-Repro-Service-Token"

_process_service_token: Optional[str] = None


def set_process_service_token(token: Optional[str]) -> Optional[str]:
    """Set the process-default service token (CLI, worker daemons).

    ``None`` restores the ``$REPRO_SERVICE_TOKEN`` fallback.  Returns the
    previous override so a scoped caller can restore it.
    """
    global _process_service_token
    previous = _process_service_token
    _process_service_token = token or None
    return previous


def service_token() -> Optional[str]:
    """The effective shared secret for this process (``None`` = auth off)."""
    if _process_service_token:
        return _process_service_token
    return os.environ.get(SERVICE_TOKEN_ENV) or None


def auth_headers() -> Dict[str, str]:
    """The headers a client must attach (empty when no token is configured)."""
    token = service_token()
    return {TOKEN_HEADER: token} if token else {}


def token_matches(handler: Any, token: Optional[str]) -> bool:
    """Whether one request presents the shared secret (constant-time compare).

    With no *token* configured every request passes (trusted-network mode).
    """
    if not token:
        return True
    presented = handler.headers.get(TOKEN_HEADER) or ""
    return hmac.compare_digest(presented.encode("utf-8"), token.encode("utf-8"))


def check_auth(handler: Any, token: Optional[str]) -> bool:
    """Server-side auth gate for one request; sends the 401 itself on failure.

    A missing or wrong secret gets a 401 JSON body and the handler must
    return without processing the request.  ``GET /healthz`` is exempted by
    the callers (a liveness probe carries no secrets), and HEAD handlers use
    :func:`token_matches` directly (a HEAD response must not carry a body).
    """
    if token_matches(handler, token):
        return True
    send_json(handler, 401, {"error": f"missing or invalid {TOKEN_HEADER} header"})
    return False


def raise_for_auth(exc: "urllib.error.HTTPError", url: str) -> None:
    """Turn a 401 into a loud, actionable error instead of a transport retry.

    ``HTTPError`` is an ``OSError``, so without this the retry loops in the
    worker and cache client would treat an auth mismatch as a transient
    outage and spin; a :class:`RemoteError` escapes those loops.
    """
    if exc.code == 401:
        raise RemoteError(
            f"service at {url} rejected the request (401): set a matching "
            f"{SERVICE_TOKEN_ENV} (or RuntimeConfig.service_token)"
        ) from exc


# -- TLS ------------------------------------------------------------------------

#: Server certificate + key (PEM).  Setting the cert switches every repro
#: service in the process — cache, coordinator, collector, dashboard — to
#: HTTPS; the key variable may be omitted when the cert file bundles both.
TLS_CERT_ENV = "REPRO_SERVICE_TLS_CERT"
TLS_KEY_ENV = "REPRO_SERVICE_TLS_KEY"

#: Client-side trust anchor for ``https://`` service URLs.  Point it at the
#: (self-signed) service certificate or a private CA bundle; unset, clients
#: verify against the system trust store.
TLS_CA_ENV = "REPRO_SERVICE_TLS_CA"

_client_ssl_context: Optional[ssl.SSLContext] = None
_client_ssl_ca: Any = object()  # sentinel: not yet built


def server_ssl_context() -> Optional[ssl.SSLContext]:
    """The server-side TLS context from the env, or ``None`` (plain HTTP).

    Misconfiguration (missing/unreadable cert or key) raises ``OSError`` or
    ``ssl.SSLError`` loudly at service startup — silently serving the
    shared token over plaintext would defeat the point.
    """
    cert = (os.environ.get(TLS_CERT_ENV) or "").strip()
    if not cert:
        return None
    key = (os.environ.get(TLS_KEY_ENV) or "").strip() or None
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(cert, key)
    return context


def wrap_server_socket(server: Any) -> bool:
    """Wrap an ``HTTPServer``'s listening socket in TLS when configured.

    Returns ``True`` when the server now speaks HTTPS (so callers can
    advertise an ``https://`` URL).  Called once, before the serve loop.
    """
    context = server_ssl_context()
    if context is None:
        return False
    server.socket = context.wrap_socket(server.socket, server_side=True)
    return True


def client_ssl_context() -> ssl.SSLContext:
    """The (cached) client-side TLS context for ``https://`` service URLs."""
    global _client_ssl_context, _client_ssl_ca
    ca = (os.environ.get(TLS_CA_ENV) or "").strip() or None
    if _client_ssl_context is None or ca != _client_ssl_ca:
        context = ssl.create_default_context(cafile=ca)
        # Service certs are addressed by IP/hostname ad hoc on lab networks;
        # with a private CA configured, possession of the CA-signed cert is
        # the identity — hostname matching would reject the common
        # cert-per-cluster (rather than cert-per-host) deployment.
        if ca is not None:
            context.check_hostname = False
        _client_ssl_context = context
        _client_ssl_ca = ca
    return _client_ssl_context


def urlopen(request: Any, timeout: float = 30.0) -> Any:
    """``urllib.request.urlopen`` with the repro client TLS context.

    Every service client (coordinator, cache, collector, dashboard scraper)
    funnels through here so ``https://`` URLs verify against
    ``$REPRO_SERVICE_TLS_CA`` uniformly; plain ``http://`` requests pass an
    explicit ``context=None`` and behave exactly as before.
    """
    url = request.full_url if hasattr(request, "full_url") else str(request)
    context = client_ssl_context() if url.startswith("https://") else None
    return urllib.request.urlopen(request, timeout=timeout, context=context)


# -- JSON over HTTP -------------------------------------------------------------


def send_json(handler: Any, status: int, payload: Dict[str, Any]) -> None:
    """Write *payload* as a JSON response on a ``BaseHTTPRequestHandler``.

    Shared by the coordinator and cache-service handlers so response
    conventions (content type, explicit length for keep-alive) stay in one
    place.
    """
    body = json.dumps(payload).encode("utf-8")
    handler.send_response(status)
    handler.send_header("Content-Type", "application/json")
    handler.send_header("Content-Length", str(len(body)))
    handler.end_headers()
    handler.wfile.write(body)


def read_json(handler: Any) -> Dict[str, Any]:
    """Read a request body as JSON from a ``BaseHTTPRequestHandler``
    (empty dict for missing or malformed bodies)."""
    length = int(handler.headers.get("Content-Length") or 0)
    if not length:
        return {}
    try:
        return json.loads(handler.rfile.read(length).decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return {}


def http_post_json(url: str, payload: Dict[str, Any], timeout: float = 30.0) -> Dict[str, Any]:
    """POST *payload* as JSON (with the auth header when a token is set) and
    return the decoded JSON response body; a 401 raises :class:`RemoteError`."""
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=body,
        method="POST",
        headers={
            "Content-Type": "application/json",
            **auth_headers(),
            **obs_tracing.trace_headers(),
        },
    )
    try:
        with urlopen(request, timeout=timeout) as response:
            data = response.read()
    except urllib.error.HTTPError as exc:
        raise_for_auth(exc, url)
        raise
    return json.loads(data.decode("utf-8")) if data else {}


def http_get_json(url: str, timeout: float = 30.0) -> Dict[str, Any]:
    """GET *url* (with the auth header when a token is set) and return the
    decoded JSON response body; a 401 raises :class:`RemoteError`."""
    request = urllib.request.Request(
        url, headers={**auth_headers(), **obs_tracing.trace_headers()}
    )
    try:
        with urlopen(request, timeout=timeout) as response:
            data = response.read()
    except urllib.error.HTTPError as exc:
        raise_for_auth(exc, url)
        raise
    return json.loads(data.decode("utf-8")) if data else {}
