"""The RemoteExecutor: plugging distributed workers into the task scheduler.

``repro report --workers HOST:PORT`` constructs one of these.  It embeds a
:class:`~repro.eval.remote.coordinator.Coordinator` behind an HTTP server
bound to the given address; ``repro worker serve`` daemons (on this or any
other host) register against it and long-poll for work.  To the
:class:`~repro.eval.taskgraph.TaskScheduler` it is just another
:class:`~repro.eval.taskgraph.TaskExecutor`: ``submit`` encodes a task spec
onto the queue, ``wait`` drains completions (driving lease-expiry
reassignment while parked), and ``close`` revokes leases and tells workers
the run is over.

Division of labour: crash *retry* lives in the coordinator (lease expiry →
requeue with ``attempt+1`` up to ``max_attempts``); this class only turns a
definitive failure — a worker-reported exception or an exhausted retry
budget — into :class:`~repro.errors.RemoteTaskError`, which aborts the run
exactly like a local worker exception would.  If the cluster has no live
worker for *worker_timeout* seconds while tasks are pending — nobody ever
registered, or everyone who did has since exited or crashed — the run
fails loudly instead of hanging forever.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

#: Seconds the coordinator socket stays up after close() so workers polling
#: right after the run still receive an explicit shutdown notice.
_SERVER_LINGER_SECONDS = 30.0

from repro.errors import RemoteError, RemoteTaskError
from repro.eval.cache import ArtifactCache
from repro.eval.remote import protocol
from repro.eval.remote.coordinator import (
    Coordinator,
    CoordinatorHTTPServer,
    start_coordinator_server,
)
from repro.eval.taskgraph import Task, TaskExecutor, TaskOutcome


class RemoteExecutor(TaskExecutor):
    """Run worker tasks on registered ``repro worker serve`` daemons."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 60.0,
        max_attempts: int = 3,
        worker_timeout: float = 300.0,
        verbose: bool = False,
        persistent: bool = False,
    ):
        self.coordinator = Coordinator(lease_timeout=lease_timeout, max_attempts=max_attempts)
        self.server: CoordinatorHTTPServer = start_coordinator_server(
            self.coordinator, host=host, port=port, verbose=verbose
        )
        self.worker_timeout = worker_timeout
        #: With ``persistent=True`` a normal (non-interrupt) ``close`` is a
        #: no-op, so one executor — one coordinator, one set of registered
        #: workers — can serve several scheduler runs in sequence (the
        #: generations of ``repro explore --workers``).  The owner must call
        #: :meth:`finalize` when the last run is done.
        self.persistent = persistent
        self._tasks: Dict[str, Task] = {}
        self._last_alive: Optional[float] = None
        self._closed = False

    @property
    def url(self) -> str:
        """The coordinator URL workers should be pointed at."""
        return self.server.url

    # -- TaskExecutor ---------------------------------------------------------------

    def can_execute(self, task: Task) -> bool:
        """Only keyed tasks with allowlisted payloads can cross the wire."""
        return task.key is not None and protocol.payload_name(task.fn) is not None

    def submit(self, task: Task, cache: Optional[ArtifactCache]) -> None:
        if cache is None:
            raise RemoteError(
                "remote execution requires a shared artifact cache "
                "(workers hand results back through it); --no-cache cannot be combined "
                "with --workers"
            )
        spec = protocol.encode_task(task, cache.spec)
        self._tasks[task.task_id] = task
        self.coordinator.submit(spec)

    def wait(self) -> List[TaskOutcome]:
        if self._last_alive is None:
            self._last_alive = time.time()
        while True:
            completions = self.coordinator.wait_completions(timeout=1.0)
            if completions:
                break
            # Liveness watchdog: the coordinator prunes workers silent for a
            # lease timeout, so worker_count reflects reality.  This fires
            # both when nobody ever registered and when every registered
            # worker has since exited or crashed with tasks still queued —
            # either way the run would otherwise hang forever.
            if self.coordinator.worker_count > 0:
                self._last_alive = time.time()
            elif time.time() - self._last_alive > self.worker_timeout:
                raise RemoteError(
                    f"no live worker at the coordinator at {self.url} for "
                    f"{self.worker_timeout:.0f}s with tasks still pending; start some with "
                    f"'repro worker serve --coordinator {self.url}'"
                )
        outcomes: List[TaskOutcome] = []
        for completion in completions:
            task = self._tasks.pop(completion["task_id"], None)
            if task is None:
                continue  # late duplicate of an already-delivered completion
            if completion.get("error"):
                raise RemoteTaskError(
                    f"task '{completion['task_id']}' failed on worker "
                    f"'{completion['worker_id']}': {completion['error']}"
                )
            outcomes.append(
                TaskOutcome(
                    task=task,
                    value=completion.get("value"),
                    in_cache=bool(completion.get("in_cache")),
                    worker=str(completion.get("worker_id", "remote")),
                    start=float(completion.get("start", 0.0)),
                    end=float(completion.get("end", 0.0)),
                )
            )
        return outcomes

    def close(self, interrupt: bool = False) -> None:
        """Revoke leases and stop; workers observe shutdown and exit.

        The HTTP server keeps answering (with ``shutdown: true``) on its
        daemon thread until this process exits, so workers polling a moment
        later still learn the run is over rather than hitting a refused
        connection; once the process does exit, their unreachability
        fallback retires them anyway.
        """
        if self.persistent and not interrupt:
            return  # the owner finalize()s after its last scheduler run
        if self._closed:
            return
        self._closed = True
        self.coordinator.shutdown()
        self._tasks.clear()
        # Free the socket after a linger long enough for one poll round trip
        # (a long-lived parent process should not accumulate dead servers).
        timer = threading.Timer(_SERVER_LINGER_SECONDS, self.stop_server)
        timer.daemon = True
        timer.start()

    def finalize(self) -> None:
        """End a persistent executor's run for real (revoke leases, shut down)."""
        self.persistent = False
        self.close()

    def stop_server(self) -> None:
        """Hard-stop the embedded HTTP server (idempotent; used by tests)."""
        try:
            self.server.shutdown()
            self.server.server_close()
        except Exception:
            pass
