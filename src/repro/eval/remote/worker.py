"""The ``repro worker serve`` daemon: long-poll, execute, publish, repeat.

A worker is stateless and owns no scheduling decisions: it registers with a
coordinator (``repro report --workers`` embeds one), long-polls
``/tasks/lease`` for ready task specs, executes each through the same pure
payload functions the local process pool uses, and publishes the result via
its configured cache backend — a shared directory or, more usefully across
machines, an ``http://`` cache-service URL.  Only the small completion
notice (and, for JSON-serialised sweep values, the value itself) crosses
the coordinator wire; pickled compile artifacts stay in the cache and are
reported as ``in_cache``.

A background thread heartbeats at a third of the coordinator's lease
timeout, renewing the leases this worker holds; if the worker dies, the
missing heartbeats let the coordinator reassign its tasks.  The worker
exits when the coordinator says ``shutdown`` (the run finished), when the
coordinator becomes unreachable after successful registration (the parent
exited), or after ``--max-tasks`` tasks (useful for tests and draining).
``repro worker serve --pool N`` (:func:`run_worker_pool`) supervises N of
these loops as child processes from one daemon.

Failure-injection hook for tests: when the ``REPRO_WORKER_SELF_DESTRUCT``
environment variable is set and its value is a substring of a leased task
id, the worker hard-exits (``os._exit``) *before* executing — simulating a
crash mid-task so reassignment paths can be exercised end to end.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.errors import RemoteError
from repro.eval.cache import ArtifactCache, set_process_hmac_key
from repro.eval.remote import protocol
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import tracing as obs_tracing
from repro.obs.logs import get_logger

#: Test hook: crash (os._exit) on leasing a task whose id contains this value.
SELF_DESTRUCT_ENV = "REPRO_WORKER_SELF_DESTRUCT"

#: Consecutive unreachable-coordinator polls tolerated after registration
#: before the worker concludes the run is over and exits cleanly.
MAX_CONSECUTIVE_FAILURES = 5

_TASKS_EXECUTED = obs_metrics.counter(
    "repro_worker_tasks_executed_total", "Task specs this worker process executed, by outcome."
)


def _log(message: str, verbose: bool) -> None:
    # Per-task chatter logs at DEBUG; the logger is forced to DEBUG when the
    # worker runs with verbose=True, preserving the historical --verbose
    # behaviour while $REPRO_LOG_LEVEL filters everything else.
    get_logger("worker", verbose=verbose).debug(message)


def _register(
    coordinator_url: str, name: Optional[str], startup_timeout: float, verbose: bool
) -> Dict[str, Any]:
    """Register with the coordinator, retrying until it comes up."""
    deadline = time.time() + startup_timeout
    while True:
        try:
            response = protocol.http_post_json(
                f"{coordinator_url}/workers/register", {"name": name}, timeout=10.0
            )
            if response.get("shutdown"):
                raise RemoteError("coordinator is already shutting down")
            return response
        except protocol.TRANSPORT_ERRORS as exc:
            if time.time() >= deadline:
                raise RemoteError(
                    f"coordinator at {coordinator_url} unreachable for "
                    f"{startup_timeout:.0f}s: {exc}"
                ) from exc
            _log(f"waiting for coordinator at {coordinator_url} ...", verbose)
            time.sleep(0.5)


def _execute_spec(
    spec: Dict[str, Any], cache: ArtifactCache, worker_id: Optional[str] = None
) -> Dict[str, Any]:
    """Run one decoded task spec; returns the completion payload fields.

    When the spec carries trace context (the submitting scheduler was
    traced), the task span recorded here re-parents under that scheduler's
    span, so a distributed run still yields one coherent trace.
    """
    start = time.time()
    trace_ctx = spec.get("trace") or {}
    obs_profile.count(f"task.{spec.get('kind', 'task')}")
    try:
        with obs_tracing.activate(trace_ctx.get("trace_id"), trace_ctx.get("parent_id")):
            with obs_tracing.span(
                f"task:{spec.get('task_id', '?')}",
                kind=str(spec.get("kind", "task")),
                worker=worker_id or f"pid:{os.getpid()}",
                attempt=spec.get("attempt", 1),
            ):
                task_id, fn, args, key, serializer = protocol.decode_task(spec, cache.spec)
                value = cache.get_or_compute(key, lambda: fn(*args), serializer=serializer)
        _TASKS_EXECUTED.inc(outcome="ok")
        if serializer in ("pickle", "artifact"):
            # The artifact is in the shared cache; don't ship it again.
            return {"ok": True, "in_cache": True, "value": None, "start": start, "end": time.time()}
        return {"ok": True, "in_cache": False, "value": value, "start": start, "end": time.time()}
    except Exception as exc:  # deterministic failures go back to the parent
        _TASKS_EXECUTED.inc(outcome="error")
        return {
            "ok": False,
            "in_cache": False,
            "value": None,
            "error": f"{type(exc).__name__}: {exc}",
            "start": start,
            "end": time.time(),
        }


def run_worker(
    coordinator_url: str,
    cache_spec: Optional[str] = None,
    name: Optional[str] = None,
    startup_timeout: float = 120.0,
    poll_wait: float = 10.0,
    max_tasks: Optional[int] = None,
    hmac_key: Optional[str] = None,
    verbose: bool = False,
) -> int:
    """Serve tasks until the coordinator ends the run; returns an exit code.

    *cache_spec* addresses the artifact store this worker publishes through
    (path or URL; defaults to ``$REPRO_CACHE_DIR`` / ``./.repro_cache``) —
    for a multi-host run it must name the same store the parent reads.
    """
    coordinator_url = coordinator_url.strip().rstrip("/")
    if not coordinator_url.startswith(("http://", "https://")):
        # Accept the bare HOST:PORT form that `repro report --workers` takes,
        # so copying an address between the two commands just works.
        coordinator_url = f"http://{coordinator_url}"
    if hmac_key:
        set_process_hmac_key(hmac_key)
    obs_tracing.set_service("worker")
    obs_metrics.install_stage_observer()
    obs_profile.maybe_start(service="worker")
    cache = ArtifactCache.from_spec(cache_spec)
    registration = _register(coordinator_url, name, startup_timeout, verbose)
    worker_id = registration["worker_id"]
    lease_timeout = float(registration.get("lease_timeout", 60.0))
    _log(f"registered as {worker_id} (lease timeout {lease_timeout:.0f}s)", verbose)

    stop = threading.Event()
    # The task currently being executed, as seen by the heartbeat thread.
    # Heartbeats renew only this lease: a finished task whose completion
    # notice was lost must be allowed to expire and be reassigned, or the
    # run would wait on it forever.  "trace" carries the current task's
    # trace id so the coordinator can attribute a stuck worker to a trace.
    active: Dict[str, Optional[str]] = {"task": None, "trace": None}

    def heartbeat_loop() -> None:
        interval = max(0.5, lease_timeout / 3.0)
        while not stop.wait(interval):
            current = active["task"]
            try:
                response = protocol.http_post_json(
                    f"{coordinator_url}/workers/heartbeat",
                    {
                        "worker_id": worker_id,
                        "tasks": [current] if current else [],
                        "trace_id": active["trace"],
                    },
                    timeout=10.0,
                )
                if response.get("shutdown"):
                    stop.set()
            except protocol.TRANSPORT_ERRORS:
                pass  # the main loop notices persistent unreachability

    heartbeat = threading.Thread(target=heartbeat_loop, daemon=True)
    heartbeat.start()

    self_destruct = os.environ.get(SELF_DESTRUCT_ENV, "")
    executed = 0
    failures = 0
    try:
        while not stop.is_set():
            try:
                response = protocol.http_post_json(
                    f"{coordinator_url}/tasks/lease",
                    {"worker_id": worker_id, "wait": poll_wait},
                    timeout=poll_wait + 15.0,
                )
            except protocol.TRANSPORT_ERRORS:
                failures += 1
                if failures >= MAX_CONSECUTIVE_FAILURES:
                    _log("coordinator gone; exiting", verbose)
                    break
                time.sleep(1.0)
                continue
            failures = 0
            if response.get("shutdown"):
                _log("coordinator finished the run; exiting", verbose)
                break
            spec = response.get("task")
            if not spec:
                continue
            task_id = spec.get("task_id", "?")
            if self_destruct and self_destruct in task_id:
                _log(f"self-destruct on {task_id}", verbose)
                os._exit(17)
            _log(f"executing {task_id} (attempt {spec.get('attempt', 1)})", verbose)
            active["task"] = task_id
            active["trace"] = (spec.get("trace") or {}).get("trace_id")
            try:
                outcome = _execute_spec(spec, cache, worker_id=worker_id)
            finally:
                active["task"] = None
                active["trace"] = None
            for attempt in range(3):
                try:
                    protocol.http_post_json(
                        f"{coordinator_url}/tasks/complete",
                        {"worker_id": worker_id, "task_id": task_id, **outcome},
                        timeout=30.0,
                    )
                    break
                except protocol.TRANSPORT_ERRORS:
                    # Transient: retry; if the coordinator is really gone,
                    # give up — heartbeats no longer renew this lease, so it
                    # expires and another worker re-leases the task, hitting
                    # the cache entry we already wrote.
                    if attempt == 2:
                        _log(f"could not report completion of {task_id}", verbose)
                    else:
                        time.sleep(0.5)
            executed += 1
            if max_tasks is not None and executed >= max_tasks:
                _log(f"reached --max-tasks {max_tasks}; exiting", verbose)
                break
    finally:
        stop.set()
        # Flush telemetry now rather than trusting atexit: a pool child
        # exits via sys.exit inside multiprocessing, and a remote span
        # shipper needs its queue drained while the collector is still up.
        obs_tracing.shutdown()
    return 0


def _pool_child(kwargs: Dict[str, Any]) -> None:
    """Entry point of one pool member process (module-level for spawn)."""
    sys.exit(run_worker(**kwargs))


def run_worker_pool(pool: int, name: Optional[str] = None, **kwargs: Any) -> int:
    """``repro worker serve --pool N``: one daemon driving N executor processes.

    Replaces N foreground ``repro worker serve`` invocations: each child is a
    full :func:`run_worker` loop (own registration, own heartbeats, so a
    crashed member's leases expire independently), named ``<name>-<i>`` when
    a stable ``--name`` was given.  The parent just supervises: it waits for
    the children to observe the coordinator's shutdown and exit, forwards
    Ctrl-C as termination, and returns the worst child exit code.  Children
    inherit the environment, so ``$REPRO_CACHE_HMAC_KEY`` and
    ``$REPRO_SERVICE_TOKEN`` apply pool-wide.
    """
    if pool < 1:
        raise ValueError(f"pool size must be >= 1, got {pool}")
    members: List[multiprocessing.Process] = []
    for index in range(1, pool + 1):
        child_kwargs = dict(kwargs, name=f"{name}-{index}" if name else None)
        process = multiprocessing.Process(
            target=_pool_child, args=(child_kwargs,), name=f"repro-worker-{index}"
        )
        process.daemon = False  # members must outlive transient parent hiccups
        process.start()
        members.append(process)
    _log(f"pool of {pool} workers started (pids {[p.pid for p in members]})",
         kwargs.get("verbose", False))
    try:
        for process in members:
            process.join()
    except KeyboardInterrupt:
        for process in members:
            if process.is_alive():
                process.terminate()
        for process in members:
            process.join(timeout=10)
        return 130
    # Normalise to shell convention: a member killed by signal N has
    # exitcode -N, which must read as failure (128+N), never as success.
    codes = [
        (128 - code) if (code := process.exitcode or 0) < 0 else code
        for process in members
    ]
    return max(codes, default=0)
