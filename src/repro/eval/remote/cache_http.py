"""Shared artifact cache over HTTP: the ``repro cache serve`` service and its client.

The service wraps one :class:`~repro.eval.cache.LocalFSBackend` store in a
:class:`http.server.ThreadingHTTPServer` so several machines can share it;
the :class:`HTTPCacheBackend` client plugs into
:class:`~repro.eval.cache.ArtifactCache` wherever a local directory would.
Blobs travel verbatim — serialisation, content addressing and the optional
HMAC envelope all stay client-side, so the service never unpickles anything
and a reader can trust entries only as far as its own signature check.

Endpoints (keys are validated as 64 hex chars, so no path escapes):

| method & path                 | meaning                                        |
| ----------------------------- | ---------------------------------------------- |
| ``GET /objects/<key>``        | blob bytes; ``X-Repro-Serializer`` header; 404 = miss |
| ``HEAD /objects/<key>``       | existence probe (same header, no body)         |
| ``PUT /objects/<key>``        | atomic store (serializer from the same header) |
| ``POST /locks/<key>/acquire`` | single-flight lock; long-polls until granted or ``wait`` expires |
| ``POST /locks/<key>/release`` | release by token                               |
| ``GET /stats``                | the underlying store's ``cache stats`` dict    |
| ``GET /healthz``              | liveness probe: role/version/uptime (never auth'd) |
| ``GET /metrics``              | Prometheus text exposition (never auth'd; docs/OBSERVABILITY.md) |

With a service token configured (``REPRO_SERVICE_TOKEN`` /
``RuntimeConfig.service_token``) every endpoint except the liveness probe
requires the shared secret under a constant-time compare; mismatches get a
401 (docs/DISTRIBUTED.md "Trust model").

Single-flight is preserved *server-side*: an acquire takes the store's
per-key ``flock`` in the handler thread and parks it in a lease table, so
HTTP clients, co-located local processes and the server itself all
serialise on the same lock.  Leases expire (default 300 s) so a client that
dies while holding one only stalls its key briefly; the lock remains purely
an anti-duplication measure — correctness never depends on it, and clients
that fail to acquire simply compute redundantly.
"""

from __future__ import annotations

import contextlib
import re
import threading
import time
import urllib.error
import urllib.request
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

try:  # POSIX-only; without it the server's lease table alone serialises clients.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro import __version__
from repro.errors import RemoteError
from repro.eval.cache import SERIALIZERS, LocalFSBackend
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.logs import get_logger
from repro.eval.remote.protocol import (
    TRANSPORT_ERRORS,
    auth_headers,
    check_auth,
    http_get_json,
    http_post_json,
    raise_for_auth,
    read_json,
    send_json,
    service_token,
    token_matches,
    urlopen,
    wrap_server_socket,
)

SERIALIZER_HEADER = "X-Repro-Serializer"

#: A held lock lease expires after this long without release, so a crashed
#: client cannot stall its key forever (duplicate work, never corruption).
DEFAULT_LOCK_LEASE_SECONDS = 300.0

#: How long an acquire long-polls before giving up (client then computes
#: without the lock — the advisory degradation the local flock also allows).
DEFAULT_LOCK_WAIT_SECONDS = 60.0

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

# -- telemetry (process-local; exposed on GET /metrics) ---------------------------

_HITS = obs_metrics.counter(
    "repro_cache_hits_total", "Object GETs served from the store (200)."
)
_MISSES = obs_metrics.counter(
    "repro_cache_misses_total", "Object GETs that missed the store (404)."
)
_SERVER_PUTS = obs_metrics.counter(
    "repro_cache_puts_total", "Objects stored via PUT."
)
_LOCK_ACQUIRES = obs_metrics.counter(
    "repro_cache_lock_acquires_total", "Single-flight lock leases granted."
)
_LOCK_TIMEOUTS = obs_metrics.counter(
    "repro_cache_lock_timeouts_total", "Lock acquires that timed out (client computes unlocked)."
)
_ENTRIES = obs_metrics.gauge(
    "repro_cache_entries", "Entries in the served store (refreshed at scrape)."
)
_BYTES = obs_metrics.gauge(
    "repro_cache_bytes", "Total bytes in the served store (refreshed at scrape)."
)
_REQUEST_SECONDS = obs_metrics.histogram(
    "repro_cache_request_seconds",
    "Wall-clock seconds spent handling one HTTP request, by method.",
    buckets=obs_metrics.REQUEST_BUCKETS,
)


def _timed_handler(method: Any) -> Any:
    """Wrap a ``do_VERB`` so every request lands in the duration histogram."""
    verb = method.__name__[3:]

    def wrapper(self: Any) -> None:
        started = time.perf_counter()
        try:
            method(self)
        finally:
            _REQUEST_SECONDS.observe(time.perf_counter() - started, method=verb)

    wrapper.__name__ = method.__name__
    wrapper.__doc__ = method.__doc__
    return wrapper


@dataclass
class _LockLease:
    token: str
    deadline: float
    handle: Any = field(default=None, repr=False)  # open fd holding the flock


class CacheHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning the store and the single-flight leases."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        backend: LocalFSBackend,
        lock_lease_seconds: float = DEFAULT_LOCK_LEASE_SECONDS,
        verbose: bool = False,
        token: Optional[str] = None,
    ):
        super().__init__(address, _CacheRequestHandler)
        self.backend = backend
        self.lock_lease_seconds = lock_lease_seconds
        self.verbose = verbose
        self.start_time = time.time()
        self.logger = get_logger("cache", verbose=verbose)
        obs_metrics.install_stage_observer()
        obs_metrics.set_build_info()
        # Shared service secret (docs/DISTRIBUTED.md "Trust model"): when
        # set, every request except GET /healthz must present it.
        self.token = token if token is not None else service_token()
        self.lock_mutex = threading.Lock()
        self.lock_leases: Dict[str, _LockLease] = {}
        # Expired leases must be reclaimed even if no further HTTP acquire
        # for that key ever arrives: the lease holds a real flock, and a
        # co-located local process blocked on it has no timeout of its own.
        self._reaper_stop = threading.Event()
        self._reaper = threading.Thread(target=self._reap_loop, daemon=True)
        self._reaper.start()
        self.tls = wrap_server_socket(self)

    def _reap_loop(self) -> None:
        while not self._reaper_stop.wait(1.0):
            now = time.time()
            with self.lock_mutex:
                for key, lease in list(self.lock_leases.items()):
                    if lease.deadline <= now:
                        self._drop_locked(key, lease)

    def server_close(self) -> None:
        self._reaper_stop.set()
        super().server_close()

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        scheme = "https" if self.tls else "http"
        return f"{scheme}://{host}:{port}"

    # -- lease table -------------------------------------------------------------

    def try_acquire(self, key: str) -> Optional[str]:
        """One non-blocking acquisition attempt; returns a token or ``None``."""
        now = time.time()
        with self.lock_mutex:
            lease = self.lock_leases.get(key)
            if lease is not None:
                if lease.deadline > now:
                    return None
                self._drop_locked(key, lease)  # expired: reclaim from dead client
            handle = None
            if fcntl is not None:
                lock_path = self.backend.lock_path(key)
                lock_path.parent.mkdir(parents=True, exist_ok=True)
                handle = open(lock_path, "a")
                try:
                    fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    handle.close()
                    return None  # a co-located local process holds the flock
            token = uuid.uuid4().hex
            self.lock_leases[key] = _LockLease(
                token=token, deadline=now + self.lock_lease_seconds, handle=handle
            )
            return token

    def release(self, key: str, token: str) -> bool:
        with self.lock_mutex:
            lease = self.lock_leases.get(key)
            if lease is None or lease.token != token:
                return False
            self._drop_locked(key, lease)
            return True

    def _drop_locked(self, key: str, lease: _LockLease) -> None:
        if lease.handle is not None:
            try:
                if fcntl is not None:
                    fcntl.flock(lease.handle, fcntl.LOCK_UN)
            except OSError:
                pass
            try:
                lease.handle.close()
            except OSError:
                pass
        self.lock_leases.pop(key, None)


class _CacheRequestHandler(BaseHTTPRequestHandler):
    """Routes the endpoint table in the module docstring onto the backend."""

    server: CacheHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # Per-request chatter logs at DEBUG: visible with --verbose (which
        # forces the logger to DEBUG) or REPRO_LOG_LEVEL=DEBUG.
        self.server.logger.debug(format % args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        send_json(self, status, payload)

    def _read_json(self) -> Dict[str, Any]:
        return read_json(self)

    def _object_key(self) -> Optional[str]:
        match = re.match(r"^/objects/([0-9a-f]{64})$", self.path)
        return match.group(1) if match else None

    def _lock_key(self, action: str) -> Optional[str]:
        match = re.match(rf"^/locks/([0-9a-f]{{64}})/{action}$", self.path)
        return match.group(1) if match else None

    # -- objects ------------------------------------------------------------------

    @_timed_handler
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/healthz":  # liveness probe: exempt from auth
            self._send_json(
                200,
                {
                    "ok": True,
                    "root": str(self.server.backend.root),
                    "role": "cache",
                    "version": __version__,
                    "uptime_seconds": round(time.time() - self.server.start_time, 3),
                },
            )
            return
        if self.path == "/metrics":  # scrape endpoint: exempt like /healthz
            try:
                stats = self.server.backend.stats()
                _ENTRIES.set(float(stats.get("entries", 0)))
                _BYTES.set(float(stats.get("total_bytes", 0)))
            except OSError:
                pass
            body = obs_metrics.REGISTRY.render().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if not check_auth(self, self.server.token):
            return
        key = self._object_key()
        if key is not None:
            with obs_tracing.server_span(
                "cache.get", self.headers, kind="cache", key=key[:16]
            ) as span:
                blob = self.server.backend.get_blob(key)
                if blob is None:
                    _MISSES.inc()
                    span.set("cache_hit", False)
                    self._send_json(404, {"error": "miss"})
                    return
                _HITS.inc()
                span.set("cache_hit", True)
                serializer, data = blob
                self.send_response(200)
                self.send_header("Content-Type", "application/octet-stream")
                self.send_header(SERIALIZER_HEADER, serializer)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)
                return
        if self.path == "/stats":
            self._send_json(200, self.server.backend.stats())
            return
        self._send_json(404, {"error": "unknown path"})

    @_timed_handler
    def do_HEAD(self) -> None:  # noqa: N802
        if not token_matches(self, self.server.token):
            # A HEAD response must not carry a body; send a bare 401.
            self.send_response(401)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        key = self._object_key()
        if key is None:
            self.send_response(404)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        blob_serializer = None
        for serializer in ("artifact", "json", "pickle"):
            if self.server.backend._path(key, serializer).is_file():
                blob_serializer = serializer
                break
        self.send_response(200 if blob_serializer else 404)
        if blob_serializer:
            self.send_header(SERIALIZER_HEADER, blob_serializer)
        self.send_header("Content-Length", "0")
        self.end_headers()

    @_timed_handler
    def do_PUT(self) -> None:  # noqa: N802
        # Drain the body before any error response: on an HTTP/1.1
        # keep-alive connection, unread body bytes would be parsed as the
        # next request line, desynchronising the connection.
        length = int(self.headers.get("Content-Length") or 0)
        data = self.rfile.read(length) if length else b""
        if not check_auth(self, self.server.token):
            return
        key = self._object_key()
        if key is None:
            self._send_json(404, {"error": "unknown path"})
            return
        serializer = self.headers.get(SERIALIZER_HEADER, "")
        if serializer not in SERIALIZERS:
            self._send_json(400, {"error": f"missing or invalid {SERIALIZER_HEADER} header"})
            return
        if not data:
            self._send_json(400, {"error": "empty body"})
            return
        with obs_tracing.server_span("cache.put", self.headers, kind="cache", key=key[:16]):
            self.server.backend.put_blob(key, serializer, data)
        _SERVER_PUTS.inc()
        self._send_json(200, {"stored": True})

    # -- locks ----------------------------------------------------------------------

    @_timed_handler
    def do_POST(self) -> None:  # noqa: N802
        body = self._read_json()  # always drain the body (keep-alive safety)
        if not check_auth(self, self.server.token):
            return
        key = self._lock_key("acquire")
        if key is not None:
            wait = float(body.get("wait", DEFAULT_LOCK_WAIT_SECONDS))
            deadline = time.time() + max(0.0, wait)
            while True:
                token = self.server.try_acquire(key)
                if token is not None:
                    _LOCK_ACQUIRES.inc()
                    self._send_json(200, {"token": token})
                    return
                if time.time() >= deadline:
                    _LOCK_TIMEOUTS.inc()
                    self._send_json(408, {"error": "lock wait timed out"})
                    return
                time.sleep(0.05)
        key = self._lock_key("release")
        if key is not None:
            released = self.server.release(key, str(body.get("token", "")))
            self._send_json(200, {"released": released})
            return
        self._send_json(404, {"error": "unknown path"})


def make_cache_server(
    root: Path,
    host: str = "127.0.0.1",
    port: int = 0,
    lock_lease_seconds: float = DEFAULT_LOCK_LEASE_SECONDS,
    verbose: bool = False,
    token: Optional[str] = None,
) -> CacheHTTPServer:
    """Build (but do not run) a cache server over the store at *root*."""
    return CacheHTTPServer(
        (host, port), LocalFSBackend(Path(root)), lock_lease_seconds, verbose, token=token
    )


def serve_cache(
    root: Path,
    host: str = "127.0.0.1",
    port: int = 8737,
    lock_lease_seconds: float = DEFAULT_LOCK_LEASE_SECONDS,
    verbose: bool = False,
    token: Optional[str] = None,
) -> int:
    """``repro cache serve``: serve *root* until interrupted (blocking)."""
    obs_tracing.set_service("cache")
    server = make_cache_server(root, host, port, lock_lease_seconds, verbose, token=token)
    auth = "shared-secret auth on" if server.token else "no auth (trusted network)"
    server.logger.info(f"serving artifact cache {root} at {server.url} ({auth})")
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    return 0


# ---------------------------------------------------------------------------
# client
# ---------------------------------------------------------------------------


class HTTPCacheBackend:
    """:class:`~repro.eval.cache.CacheBackend` client for a cache service.

    ``spec`` is the service URL, so the same string that configured this
    backend reconstructs an equivalent one inside any worker process.
    ``delete`` is a no-op (a corrupt remote entry is simply overwritten by
    the recompute that follows the miss), and ``lock`` degrades to
    lock-less computation when the service is unreachable or the wait times
    out — exactly the advisory semantics of the local ``flock``.
    """

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    @property
    def spec(self) -> str:
        return self.base_url

    def _object_url(self, key: str) -> str:
        if not _KEY_RE.match(key):
            raise RemoteError(f"invalid cache key '{key}'")
        return f"{self.base_url}/objects/{key}"

    def get_blob(self, key: str) -> Optional[Tuple[str, bytes]]:
        request = urllib.request.Request(
            self._object_url(key), headers={**auth_headers(), **obs_tracing.trace_headers()}
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                serializer = response.headers.get(SERIALIZER_HEADER, "pickle")
                return serializer, response.read()
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise_for_auth(exc, self.base_url)
            raise RemoteError(f"cache service GET failed: {exc}") from exc
        except urllib.error.URLError as exc:
            raise RemoteError(f"cache service unreachable at {self.base_url}: {exc}") from exc

    def put_blob(self, key: str, serializer: str, data: bytes) -> None:
        request = urllib.request.Request(
            self._object_url(key),
            data=data,
            method="PUT",
            headers={
                "Content-Type": "application/octet-stream",
                SERIALIZER_HEADER: serializer,
                **auth_headers(),
                **obs_tracing.trace_headers(),
            },
        )
        try:
            with urlopen(request, timeout=self.timeout):
                pass
        except urllib.error.HTTPError as exc:
            raise_for_auth(exc, self.base_url)
            raise RemoteError(f"cache service PUT failed: {exc}") from exc
        except urllib.error.URLError as exc:
            raise RemoteError(f"cache service PUT failed: {exc}") from exc

    def contains(self, key: str) -> bool:
        request = urllib.request.Request(
            self._object_url(key),
            method="HEAD",
            headers={**auth_headers(), **obs_tracing.trace_headers()},
        )
        try:
            with urlopen(request, timeout=self.timeout):
                return True
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return False
            raise_for_auth(exc, self.base_url)
            raise RemoteError(f"cache service HEAD failed: {exc}") from exc
        except urllib.error.URLError as exc:
            raise RemoteError(f"cache service unreachable at {self.base_url}: {exc}") from exc

    def delete(self, key: str) -> None:
        """No remote deletion: the recompute after a miss overwrites the entry."""

    @contextlib.contextmanager
    def lock(self, key: str) -> Iterator[None]:
        token: Optional[str] = None
        try:
            response = http_post_json(
                f"{self.base_url}/locks/{key}/acquire",
                {"wait": DEFAULT_LOCK_WAIT_SECONDS},
                timeout=DEFAULT_LOCK_WAIT_SECONDS + 10.0,
            )
            token = response.get("token")
        except (*TRANSPORT_ERRORS, ValueError):
            token = None  # advisory: compute without the lock
        try:
            yield
        finally:
            if token is not None:
                try:
                    http_post_json(
                        f"{self.base_url}/locks/{key}/release",
                        {"token": token},
                        timeout=self.timeout,
                    )
                except (*TRANSPORT_ERRORS, ValueError):
                    pass  # the lease expires on its own

    def discard_lock_file(self, key: str) -> None:
        """Server leases expire on their own; nothing to clean client-side."""

    def stats(self) -> Dict[str, Any]:
        try:
            return http_get_json(f"{self.base_url}/stats", timeout=self.timeout)
        except (*TRANSPORT_ERRORS, ValueError) as exc:
            raise RemoteError(f"cache service stats failed: {exc}") from exc
