"""Task coordinator: the queue remote workers long-poll for ready work.

:class:`Coordinator` is deliberately plain threading code with no HTTP in
it — the full lease/heartbeat/retry state machine is unit-testable by
calling its methods directly (the fake-worker tests do exactly that).
:func:`start_coordinator_server` wraps one in a
:class:`http.server.ThreadingHTTPServer` for real workers.

Lifecycle of one task spec:

1. the executor :meth:`~Coordinator.submit`\\ s it (state *queued*);
2. a worker's long-polling :meth:`~Coordinator.lease` hands out the
   **costliest** ready task (static cost table: compiles before sweep
   points before renders, heavy workloads first, FIFO among equals) with a
   deadline of ``now + lease_timeout`` (state *leased*) — preferring, per
   worker, tasks of workloads that worker already compiled (**affinity
   sharding**: its sweep-input memo is hot), and deferring tasks another
   live worker compiled while other work is available.  Heartbeats renew
   every lease the worker holds;
3. :meth:`~Coordinator.complete` moves it to the completion queue the
   executor drains — or, if the deadline passes first (worker crashed,
   hung, or was killed), the reaper requeues it with ``attempt + 1`` and
   the next ``lease`` hands it to another worker;
4. after ``max_attempts`` lease expiries the task completes with an error
   instead (a poison task must not ping-pong between workers forever).

A completion from a worker whose lease already expired is dropped: the
task was reassigned, and the content-addressed cache makes the duplicate
work harmless (both workers wrote identical bytes under the same key).

HTTP endpoints (JSON bodies both ways): ``POST /workers/register``,
``POST /workers/heartbeat``, ``POST /tasks/lease`` (long-poll, honouring a
client ``wait``), ``POST /tasks/complete``, and ``GET /status`` for
debugging/monitoring.  With a service token configured every endpoint
except ``GET /healthz`` (liveness: role/version/uptime) and ``GET
/metrics`` (Prometheus text exposition of the queue/lease/worker counters
and gauges — docs/OBSERVABILITY.md) requires the shared secret
(docs/DISTRIBUTED.md "Trust model").
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.eval.remote.protocol import (
    check_auth,
    read_json,
    send_json,
    service_token,
    wrap_server_socket,
)
from repro.obs import collect as obs_collect
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.logs import get_logger

#: Default seconds a leased task may go without a heartbeat before it is
#: presumed lost and requeued.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Default number of lease attempts before a task is declared failed.
DEFAULT_MAX_ATTEMPTS = 3


# -- telemetry (process-local; exposed on GET /metrics) ---------------------------

_TASKS_SUBMITTED = obs_metrics.counter(
    "repro_tasks_submitted_total", "Task specs submitted to the coordinator queue."
)
_TASKS_LEASED = obs_metrics.counter(
    "repro_tasks_leased_total", "Leases handed to workers (requeues lease again)."
)
_TASKS_COMPLETED = obs_metrics.counter(
    "repro_tasks_completed_total", "Accepted task completions, by outcome (ok/error)."
)
_TASKS_REQUEUED = obs_metrics.counter(
    "repro_tasks_requeued_total", "Expired leases requeued for another worker."
)
_TASKS_FAILED = obs_metrics.counter(
    "repro_tasks_failed_total", "Tasks abandoned after exhausting their lease attempts."
)
_LEASE_LATENCY = obs_metrics.histogram(
    "repro_lease_latency_seconds", "Seconds a task spent queued before a worker leased it."
)
_QUEUE_DEPTH = obs_metrics.gauge(
    "repro_queue_depth", "Task specs currently queued, awaiting a lease."
)
_TASKS_INFLIGHT = obs_metrics.gauge(
    "repro_tasks_inflight", "Task specs currently leased to workers."
)
_WORKERS_LIVE = obs_metrics.gauge(
    "repro_workers_live", "Workers heard from within the last lease timeout."
)
_HEARTBEAT_AGE = obs_metrics.gauge(
    "repro_worker_heartbeat_age_seconds", "Seconds since each live worker was last heard."
)
_REQUEST_SECONDS = obs_metrics.histogram(
    "repro_coordinator_request_seconds",
    "Wall-clock seconds spent handling one HTTP request, by method.",
    buckets=obs_metrics.REQUEST_BUCKETS,
)


def _timed_handler(method: Any) -> Any:
    """Wrap a ``do_VERB`` so every request lands in the duration histogram."""
    verb = method.__name__[3:]

    def wrapper(self: Any) -> None:
        started = time.perf_counter()
        try:
            method(self)
        finally:
            _REQUEST_SECONDS.observe(time.perf_counter() - started, method=verb)

    wrapper.__name__ = method.__name__
    wrapper.__doc__ = method.__doc__
    return wrapper


# -- work shaping ----------------------------------------------------------------

#: Static observed-cost model (relative weights, roughly seconds on the CI
#: host).  Ready tasks lease in descending cost order so the long poles —
#: compiles generally, and the heavy workloads within a kind — start first
#: and the makespan is bounded by them instead of by whatever FIFO order the
#: graph happened to declare.  Purely advisory: results are content-addressed,
#: so lease order can never change any output.
KIND_COST: Dict[str, float] = {
    "compile": 100.0,
    "split": 3.0,
    "explore": 3.0,
    "runtime": 2.0,
    "render": 1.0,
}

#: Per-workload multipliers (mpeg2/jpeg dominate; blowfish is the cheapest).
WORKLOAD_COST: Dict[str, float] = {
    "mpeg2": 8.0,
    "jpeg": 6.0,
    "gsm": 4.0,
    "aes": 3.0,
    "adpcm": 2.5,
    "sha": 2.0,
    "mips": 1.5,
    "blowfish": 1.0,
}

#: Multiplier for tasks whose workload is unknown (renders, test payloads).
DEFAULT_WORKLOAD_COST = 2.0


def _spec_workload(spec: Dict[str, Any]) -> Optional[str]:
    workload = spec.get("workload")
    if workload:
        return str(workload)
    # Older specs: recover the workload from the task id's components.
    for part in str(spec.get("task_id", "")).split(":"):
        if part in WORKLOAD_COST:
            return part
    return None


def task_cost(spec: Dict[str, Any]) -> float:
    """Estimated cost of one task spec under the static cost table."""
    base = KIND_COST.get(str(spec.get("kind", "")), 1.0)
    workload = _spec_workload(spec)
    return base * WORKLOAD_COST.get(workload or "", DEFAULT_WORKLOAD_COST)


@dataclass
class _Lease:
    worker_id: str
    deadline: float
    spec: Dict[str, Any] = field(repr=False)


class Coordinator:
    """Thread-safe task queue with worker registration, leases and retries."""

    def __init__(
        self,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self._cond = threading.Condition()
        # A max-cost priority queue: (-cost, sequence, spec).  The sequence
        # number keeps equal-cost tasks FIFO (and the heap total-orderable
        # without comparing dicts).
        self._queue: List[Tuple[float, int, Dict[str, Any]]] = []
        self._seq = itertools.count()
        self._leases: Dict[str, _Lease] = {}
        self._completions: "deque[Dict[str, Any]]" = deque()
        self._workers: Dict[str, float] = {}
        self._worker_counter = 0
        self._shutdown = False
        # Telemetry bookkeeping: when each queued spec became leasable
        # (lease-latency histogram) and the trace id each worker last
        # reported with its heartbeat (stuck-task attribution).
        self._enqueued_at: Dict[str, float] = {}
        self._worker_traces: Dict[str, Optional[str]] = {}
        # Affinity sharding: workloads each worker has compiled.  A worker
        # whose memo already holds a workload's compile artifact executes
        # that workload's sweep/explore points without re-reading (or
        # recompiling) it, so leases prefer the compiling worker.
        self._affinity: Dict[str, set] = {}

    # -- executor side -------------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> None:
        """Queue one task spec; the next lease pops the costliest ready task."""
        with self._cond:
            spec.setdefault("attempt", 1)
            heapq.heappush(self._queue, (-task_cost(spec), next(self._seq), spec))
            _TASKS_SUBMITTED.inc()
            self._enqueued_at[str(spec.get("task_id", ""))] = time.time()
            self._cond.notify_all()

    def wait_completions(self, timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """Block up to *timeout* for completions; drain and return them.

        Also drives the lease reaper, so expired leases requeue even while
        the executor is parked here.
        """
        deadline = None if timeout is None else time.time() + timeout
        with self._cond:
            while True:
                self._reap_locked()
                if self._completions:
                    drained = list(self._completions)
                    self._completions.clear()
                    return drained
                now = time.time()
                if deadline is not None and now >= deadline:
                    return []
                # Short slices keep the reaper responsive to crashed workers.
                slice_end = min(d for d in (deadline, now + 0.5) if d is not None)
                self._cond.wait(max(0.01, slice_end - now))

    def shutdown(self) -> None:
        """End the run: revoke every lease and tell polling workers to exit."""
        with self._cond:
            self._shutdown = True
            self._queue.clear()
            self._leases.clear()
            self._cond.notify_all()

    # -- worker side ---------------------------------------------------------------

    def register(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Admit a worker; returns its id and the lease/heartbeat parameters."""
        with self._cond:
            self._reap_locked()
            self._worker_counter += 1
            worker_id = name or f"worker-{self._worker_counter}"
            if worker_id in self._workers:
                worker_id = f"{worker_id}-{self._worker_counter}"
            self._workers[worker_id] = time.time()
            return {
                "worker_id": worker_id,
                "lease_timeout": self.lease_timeout,
                "shutdown": self._shutdown,
            }

    def heartbeat(
        self,
        worker_id: str,
        tasks: Optional[List[str]] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Mark *worker_id* alive and renew the leases it is working on.

        *tasks* is the list of task ids the worker is currently executing;
        only those leases are renewed, so a task the worker has finished
        (but whose completion notice was lost in transit) stops being
        renewed, expires, and gets reassigned — the replacement worker then
        hits the cache entry the first one already wrote.  ``None`` (an
        older/simpler client) renews everything the worker holds.

        *trace_id* is the trace the worker's current task belongs to (when
        the run is traced); ``/status`` surfaces it per worker so a stuck
        task can be looked up in the trace by id.
        """
        with self._cond:
            now = time.time()
            self._workers[worker_id] = now
            self._worker_traces[worker_id] = trace_id or None
            for task_id, lease in self._leases.items():
                if lease.worker_id == worker_id and (tasks is None or task_id in tasks):
                    lease.deadline = now + self.lease_timeout
            return {"shutdown": self._shutdown}

    def _pop_spec_for(self, worker_id: str) -> Dict[str, Any]:
        """Pop the best queued spec for *worker_id* under affinity sharding.

        Three preference tiers, costliest-first (FIFO tie-break) within each:

        1. compiles (the cost-ordered long poles always start first) and
           tasks of a workload **this** worker compiled (its memo is hot);
        2. tasks no live worker has an affinity claim on (workloads whose
           compiler has since died, tasks without a workload);
        3. tasks another live worker compiled — deferred while tiers 1-2
           have work, but still leased rather than idling the caller
           ("prefer the compiling worker, fall back to any worker").

        Purely advisory, like the cost table: results are content-addressed,
        so placement can never change any output.
        """
        mine = self._affinity.get(worker_id, set())
        best_index = 0
        best_rank: Optional[Tuple[float, float, int]] = None
        for index, (neg_cost, seq, spec) in enumerate(self._queue):
            workload = _spec_workload(spec)
            is_compile = spec.get("kind") == "compile"
            if is_compile or (workload is not None and workload in mine):
                tier = 0.0
            elif workload is not None and any(
                workload in owned
                for owner, owned in self._affinity.items()
                if owner != worker_id and owner in self._workers
            ):
                tier = 2.0
            else:
                tier = 1.0
            rank = (tier, neg_cost, seq)
            if best_rank is None or rank < best_rank:
                best_index, best_rank = index, rank
        _, _, spec = self._queue.pop(best_index)
        heapq.heapify(self._queue)
        return spec

    def lease(self, worker_id: str, wait: float = 10.0) -> Dict[str, Any]:
        """Long-poll for one ready task; returns ``{"task": spec-or-None,
        "shutdown": bool}`` within roughly *wait* seconds."""
        deadline = time.time() + max(0.0, wait)
        with self._cond:
            while True:
                self._reap_locked()
                now = time.time()
                self._workers[worker_id] = now
                if self._shutdown:
                    return {"task": None, "shutdown": True}
                if self._queue:
                    spec = self._pop_spec_for(worker_id)
                    if spec.get("kind") == "compile":
                        workload = _spec_workload(spec)
                        if workload is not None:
                            self._affinity.setdefault(worker_id, set()).add(workload)
                    self._leases[spec["task_id"]] = _Lease(
                        worker_id=worker_id, deadline=now + self.lease_timeout, spec=spec
                    )
                    _TASKS_LEASED.inc()
                    enqueued = self._enqueued_at.pop(str(spec.get("task_id", "")), None)
                    if enqueued is not None:
                        _LEASE_LATENCY.observe(max(0.0, now - enqueued))
                    self._cond.notify_all()
                    return {"task": spec, "shutdown": False}
                if now >= deadline:
                    return {"task": None, "shutdown": False}
                self._cond.wait(min(0.5, deadline - now))

    def complete(
        self,
        worker_id: str,
        task_id: str,
        ok: bool,
        value: Any = None,
        in_cache: bool = False,
        error: Optional[str] = None,
        start: float = 0.0,
        end: float = 0.0,
    ) -> Dict[str, Any]:
        """Record a finished task (or a worker-reported failure)."""
        with self._cond:
            lease = self._leases.get(task_id)
            if lease is None or lease.worker_id != worker_id:
                # Lease expired and the task was reassigned; the duplicate
                # result is already in the cache, so dropping this is safe.
                return {"accepted": False}
            del self._leases[task_id]
            _TASKS_COMPLETED.inc(outcome="ok" if ok else "error")
            self._completions.append(
                {
                    "task_id": task_id,
                    "worker_id": worker_id,
                    "value": value,
                    "in_cache": in_cache,
                    "error": error if not ok else None,
                    "start": start,
                    "end": end,
                }
            )
            self._cond.notify_all()
            return {"accepted": True}

    # -- internals -----------------------------------------------------------------

    def _reap_locked(self) -> None:
        """Requeue (or fail) expired leases and forget silent workers.

        A live worker is heard from every ``lease_timeout / 3`` at the
        latest (heartbeats; idle polls are even more frequent), so one that
        has been silent for a whole lease timeout is gone — pruning it keeps
        ``worker_count`` honest (the executor's no-live-worker watchdog
        depends on that) and frees its stable ``--name`` for a restart.
        """
        now = time.time()
        for worker_id in [w for w, seen in self._workers.items() if now - seen > self.lease_timeout]:
            del self._workers[worker_id]
            self._worker_traces.pop(worker_id, None)
        for task_id in [t for t, lease in self._leases.items() if lease.deadline <= now]:
            lease = self._leases.pop(task_id)
            spec = dict(lease.spec)
            spec["attempt"] = spec.get("attempt", 1) + 1
            if spec["attempt"] <= self.max_attempts:
                heapq.heappush(self._queue, (-task_cost(spec), next(self._seq), spec))
                _TASKS_REQUEUED.inc()
                self._enqueued_at[str(task_id)] = now
            else:
                _TASKS_FAILED.inc()
                self._completions.append(
                    {
                        "task_id": task_id,
                        "worker_id": lease.worker_id,
                        "value": None,
                        "in_cache": False,
                        "error": (
                            f"lease expired {self.max_attempts} times "
                            f"(last worker: {lease.worker_id}); giving up"
                        ),
                        "start": 0.0,
                        "end": 0.0,
                    }
                )
            self._cond.notify_all()

    # -- introspection -------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        with self._cond:
            now = time.time()
            return {
                "queued": len(self._queue),
                "leased": len(self._leases),
                "completions_pending": len(self._completions),
                "workers": sorted(self._workers),
                "worker_detail": {
                    worker: {
                        "heartbeat_age_seconds": round(now - seen, 3),
                        "trace_id": self._worker_traces.get(worker),
                    }
                    for worker, seen in sorted(self._workers.items())
                },
                "shutdown": self._shutdown,
            }

    def update_metrics_gauges(self) -> None:
        """Refresh the point-in-time gauges (called just before a scrape)."""
        with self._cond:
            self._reap_locked()
            now = time.time()
            _QUEUE_DEPTH.set(len(self._queue))
            _TASKS_INFLIGHT.set(len(self._leases))
            _WORKERS_LIVE.set(len(self._workers))
            _HEARTBEAT_AGE.clear()
            for worker, seen in self._workers.items():
                _HEARTBEAT_AGE.set(max(0.0, now - seen), worker=worker)

    @property
    def worker_count(self) -> int:
        with self._cond:
            return len(self._workers)

    @property
    def inflight(self) -> int:
        with self._cond:
            return len(self._queue) + len(self._leases) + len(self._completions)


# ---------------------------------------------------------------------------
# HTTP wrapper
# ---------------------------------------------------------------------------


class CoordinatorHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP facade over one :class:`Coordinator`.

    With a *token* (explicit, ``RuntimeConfig.service_token``, or
    ``$REPRO_SERVICE_TOKEN``) every request except ``GET /healthz`` must
    carry the matching shared secret; mismatches get a 401.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        coordinator: Coordinator,
        verbose: bool = False,
        token: Optional[str] = None,
    ):
        super().__init__(address, _CoordinatorRequestHandler)
        self.coordinator = coordinator
        self.verbose = verbose
        self.token = token if token is not None else service_token()
        self.start_time = time.time()
        self.logger = get_logger("coordinator", verbose=verbose)
        obs_metrics.install_stage_observer()
        obs_metrics.set_build_info()
        self.tls = wrap_server_socket(self)

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        scheme = "https" if self.tls else "http"
        return f"{scheme}://{host}:{port}"

    def record_ingested_span(self, record: Dict[str, Any]) -> None:
        """Merge one span POSTed by a worker/cache process into this
        (client) process's own trace sink — the point of the collector.

        Discarded when the client is untraced, or when its own sink is a
        RemoteSink pointing back at this very server (re-recording would
        ship the span to ourselves forever).
        """
        active = obs_tracing.tracer()
        if active is None:
            return
        writer_url = getattr(active.writer, "base_url", None) if active.writer else None
        if writer_url is not None and writer_url.rstrip("/") == self.url:
            return
        active.record(record)


class _CoordinatorRequestHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP routing onto the coordinator's methods."""

    server: CoordinatorHTTPServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # Per-request chatter logs at DEBUG: visible with --verbose (which
        # forces the logger to DEBUG) or REPRO_LOG_LEVEL=DEBUG.
        self.server.logger.debug(format % args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        send_json(self, status, payload)

    def _read_json(self) -> Dict[str, Any]:
        return read_json(self)

    @_timed_handler
    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/healthz":  # liveness probe: exempt from auth
            self._send_json(
                200,
                {
                    "ok": True,
                    "role": "coordinator",
                    "version": __version__,
                    "uptime_seconds": round(time.time() - self.server.start_time, 3),
                },
            )
            return
        if self.path == "/metrics":  # scrape endpoint: exempt like /healthz
            self.server.coordinator.update_metrics_gauges()
            body = obs_metrics.REGISTRY.render().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if not check_auth(self, self.server.token):
            return
        if self.path == "/status":
            self._send_json(200, self.server.coordinator.status())
            return
        self._send_json(404, {"error": "unknown path"})

    @_timed_handler
    def do_POST(self) -> None:  # noqa: N802
        coordinator = self.server.coordinator
        if self.path == "/spans":
            # Span ingestion owns its own body handling: the batch byte cap
            # must refuse oversized bodies without buffering them.
            obs_collect.handle_spans_post(
                self, self.server.record_ingested_span, self.server.token
            )
            return
        body = self._read_json()  # drain first (keep-alive safety), then auth
        if not check_auth(self, self.server.token):
            return
        if self.path == "/workers/register":
            self._send_json(200, coordinator.register(body.get("name")))
            return
        if self.path == "/workers/heartbeat":
            tasks = body.get("tasks")
            trace_id = body.get("trace_id")
            self._send_json(
                200,
                coordinator.heartbeat(
                    str(body.get("worker_id", "")),
                    tasks if isinstance(tasks, list) else None,
                    trace_id=str(trace_id) if trace_id else None,
                ),
            )
            return
        if self.path == "/tasks/lease":
            self._send_json(
                200,
                coordinator.lease(
                    str(body.get("worker_id", "")), float(body.get("wait", 10.0))
                ),
            )
            return
        if self.path == "/tasks/complete":
            self._send_json(
                200,
                coordinator.complete(
                    worker_id=str(body.get("worker_id", "")),
                    task_id=str(body.get("task_id", "")),
                    ok=bool(body.get("ok", False)),
                    value=body.get("value"),
                    in_cache=bool(body.get("in_cache", False)),
                    error=body.get("error"),
                    start=float(body.get("start", 0.0)),
                    end=float(body.get("end", 0.0)),
                ),
            )
            return
        self._send_json(404, {"error": "unknown path"})


def start_coordinator_server(
    coordinator: Coordinator,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    token: Optional[str] = None,
) -> CoordinatorHTTPServer:
    """Bind and start serving *coordinator* on a daemon thread."""
    server = CoordinatorHTTPServer((host, port), coordinator, verbose=verbose, token=token)
    thread = threading.Thread(target=server.serve_forever, kwargs={"poll_interval": 0.2})
    thread.daemon = True
    thread.start()
    return server
