"""Generators for every table and figure of thesis Chapter 6.

Each function returns a dictionary with a ``rows`` list (one entry per
benchmark / sweep point) and a ``table`` string rendered with
:func:`repro.core.report.format_result_table`, so the benchmark harness can
both assert on the numbers and print output that mirrors the corresponding
artefact of the thesis.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import RuntimeConfig
from repro.core.report import arithmetic_mean, format_result_table, geometric_mean
from repro.eval.harness import EvaluationHarness


# Sweep points used by the thesis.
QUEUE_LATENCIES = [2, 8, 32, 128]          # Figure 6.5
QUEUE_DEPTHS = [2, 8, 32]                  # Figure 6.6
SPLIT_POINTS = [0.1, 0.25, 0.4, 0.5, 0.6, 0.75]   # Figures 6.3 / 6.4


def _harness(harness: Optional[EvaluationHarness]) -> EvaluationHarness:
    return harness or EvaluationHarness.shared()


# ---------------------------------------------------------------------------
# Table 6.1 — DSWP results: queues, semaphores, hardware threads
# ---------------------------------------------------------------------------


def table_6_1(harness: Optional[EvaluationHarness] = None) -> Dict:
    harness = _harness(harness)
    rows = []
    for run in harness.run_all():
        summary = run.result.dswp_summary()
        rows.append(
            {
                "benchmark": run.name,
                "queues": int(summary["queues"]),
                "semaphores": int(summary["semaphores"]),
                "hw_threads": int(summary["hw_threads"]),
                "paper_queues": run.workload.paper_queues,
                "paper_semaphores": run.workload.paper_semaphores,
                "paper_hw_threads": run.workload.paper_hw_threads,
                "sw_fraction": summary["sw_fraction"],
            }
        )
    table = format_result_table(
        ["benchmark", "queues", "semaphores", "HW threads", "paper queues", "paper HW threads"],
        [
            [r["benchmark"], r["queues"], r["semaphores"], r["hw_threads"], r["paper_queues"] or 0, r["paper_hw_threads"] or 0]
            for r in rows
        ],
        title="Table 6.1 — DSWP results (measured vs paper)",
    )
    return {"rows": rows, "table": table}


# ---------------------------------------------------------------------------
# Table 6.2 — LUT area
# ---------------------------------------------------------------------------


def table_6_2(harness: Optional[EvaluationHarness] = None) -> Dict:
    harness = _harness(harness)
    rows = []
    for run in harness.run_all():
        system = run.result.system
        microblaze = system.twill.area.detail.get("microblaze", 0)
        twill_luts = system.twill.area.luts - microblaze
        rows.append(
            {
                "benchmark": run.name,
                "legup_luts": system.pure_hardware.area.luts,
                "twill_hwthreads_luts": system.hw_thread_area.luts,
                "twill_luts": twill_luts,
                "twill_plus_microblaze_luts": system.twill.area.luts,
                "hw_thread_area_reduction": system.area_ratio_hw_threads,
            }
        )
    table = format_result_table(
        ["benchmark", "LegUp", "Twill HWThreads", "Twill", "Twill + Microblaze"],
        [
            [r["benchmark"], r["legup_luts"], r["twill_hwthreads_luts"], r["twill_luts"], r["twill_plus_microblaze_luts"]]
            for r in rows
        ],
        title="Table 6.2 — FPGA LUTs: LegUp pure HW vs Twill",
    )
    return {"rows": rows, "table": table}


# ---------------------------------------------------------------------------
# Figure 6.1 — power normalised to pure software
# ---------------------------------------------------------------------------


def figure_6_1(harness: Optional[EvaluationHarness] = None) -> Dict:
    harness = _harness(harness)
    rows = []
    for run in harness.run_all():
        norm = run.result.system.power_normalised()
        rows.append(
            {
                "benchmark": run.name,
                "pure_sw": norm["pure_sw"],
                "pure_hw": norm["pure_hw"],
                "twill": norm["twill"],
            }
        )
    table = format_result_table(
        ["benchmark", "pure SW", "pure HW (LegUp)", "Twill"],
        [[r["benchmark"], r["pure_sw"], r["pure_hw"], r["twill"]] for r in rows],
        title="Figure 6.1 — power normalised to the pure MicroBlaze implementation",
    )
    return {"rows": rows, "table": table}


# ---------------------------------------------------------------------------
# Figure 6.2 — performance speedups normalised to pure software
# ---------------------------------------------------------------------------


def figure_6_2(harness: Optional[EvaluationHarness] = None) -> Dict:
    harness = _harness(harness)
    rows = []
    for run in harness.run_all():
        system = run.result.system
        rows.append(
            {
                "benchmark": run.name,
                "pure_hw_speedup": system.hw_speedup_vs_software,
                "twill_speedup": system.speedup_vs_software,
                "twill_vs_hw": system.speedup_vs_hardware,
            }
        )
    mean_twill_vs_hw = arithmetic_mean([r["twill_vs_hw"] for r in rows])
    mean_twill_vs_sw = arithmetic_mean([r["twill_speedup"] for r in rows])
    table = format_result_table(
        ["benchmark", "LegUp HW speedup", "Twill speedup", "Twill vs HW"],
        [[r["benchmark"], r["pure_hw_speedup"], r["twill_speedup"], r["twill_vs_hw"]] for r in rows],
        title="Figure 6.2 — speedups normalised to the pure SW implementation",
    )
    return {
        "rows": rows,
        "table": table,
        "mean_twill_vs_hw": mean_twill_vs_hw,
        "mean_twill_vs_sw": mean_twill_vs_sw,
    }


# ---------------------------------------------------------------------------
# Figures 6.3 / 6.4 — partition-split sweeps (MIPS and Blowfish)
# ---------------------------------------------------------------------------


def _split_sweep(benchmark: str, harness: Optional[EvaluationHarness]) -> Dict:
    harness = _harness(harness)
    baseline = harness.run(benchmark).result.system.pure_software.cycles
    rows = []
    for split in SPLIT_POINTS:
        data = harness.twill_cycles_with_split(benchmark, split)
        rows.append(
            {
                "sw_fraction": split,
                "cycles": data["cycles"],
                "queues": int(data["queues"]),
                "speedup_vs_sw": baseline / max(data["cycles"], 1e-9),
            }
        )
    table = format_result_table(
        ["targeted SW share", "Twill cycles", "queues", "speedup vs SW"],
        [[r["sw_fraction"], r["cycles"], r["queues"], r["speedup_vs_sw"]] for r in rows],
        title=f"{benchmark} performance vs targeted partition split point",
    )
    return {"benchmark": benchmark, "rows": rows, "table": table}


def split_sweep(benchmark: str, harness: Optional[EvaluationHarness] = None) -> Dict:
    """Figure 6.3/6.4-style split sweep for an arbitrary workload (used by the CLI)."""
    return _split_sweep(benchmark, harness)


def figure_6_3(harness: Optional[EvaluationHarness] = None) -> Dict:
    """MIPS benchmark performance with various targeted partition split points."""
    return _split_sweep("mips", harness)


def figure_6_4(harness: Optional[EvaluationHarness] = None) -> Dict:
    """Blowfish benchmark performance with various targeted partition split points."""
    return _split_sweep("blowfish", harness)


# ---------------------------------------------------------------------------
# Figure 6.5 — queue latency sensitivity
# ---------------------------------------------------------------------------


def figure_6_5(harness: Optional[EvaluationHarness] = None) -> Dict:
    harness = _harness(harness)
    rows = []
    for name in harness.benchmark_names:
        base_cycles = harness.twill_cycles_with_runtime(name, RuntimeConfig(queue_latency=QUEUE_LATENCIES[0]))
        entry = {"benchmark": name}
        for latency in QUEUE_LATENCIES:
            cycles = harness.twill_cycles_with_runtime(name, RuntimeConfig(queue_latency=latency))
            entry[f"latency_{latency}"] = base_cycles / max(cycles, 1e-9)
        rows.append(entry)
    mean_slowdown_128 = 1.0 - arithmetic_mean([r[f"latency_{QUEUE_LATENCIES[-1]}"] for r in rows])
    table = format_result_table(
        ["benchmark"] + [f"lat {latency}" for latency in QUEUE_LATENCIES],
        [[r["benchmark"]] + [r[f"latency_{latency}"] for latency in QUEUE_LATENCIES] for r in rows],
        title="Figure 6.5 — Twill speedup normalised to 2-cycle queue latency",
    )
    return {"rows": rows, "table": table, "mean_slowdown_at_128": mean_slowdown_128}


# ---------------------------------------------------------------------------
# Figure 6.6 — queue length sensitivity
# ---------------------------------------------------------------------------


def figure_6_6(harness: Optional[EvaluationHarness] = None) -> Dict:
    harness = _harness(harness)
    rows = []
    for name in harness.benchmark_names:
        base_cycles = harness.twill_cycles_with_runtime(name, RuntimeConfig(queue_depth=8))
        entry = {"benchmark": name}
        for depth in QUEUE_DEPTHS:
            cycles = harness.twill_cycles_with_runtime(name, RuntimeConfig(queue_depth=depth))
            entry[f"depth_{depth}"] = base_cycles / max(cycles, 1e-9)
        rows.append(entry)
    mean_slowdown_short = 1.0 - arithmetic_mean([r[f"depth_{QUEUE_DEPTHS[0]}"] for r in rows])
    table = format_result_table(
        ["benchmark"] + [f"depth {d}" for d in QUEUE_DEPTHS],
        [[r["benchmark"]] + [r[f"depth_{d}"] for d in QUEUE_DEPTHS] for r in rows],
        title="Figure 6.6 — Twill speedup normalised to 8-entry queues",
    )
    return {"rows": rows, "table": table, "mean_slowdown_at_depth_2": mean_slowdown_short}


# ---------------------------------------------------------------------------
# §6.7 — headline aggregates
# ---------------------------------------------------------------------------


def summary(harness: Optional[EvaluationHarness] = None) -> Dict:
    harness = _harness(harness)
    runs = harness.run_all()
    twill_vs_sw = [r.result.system.speedup_vs_software for r in runs]
    twill_vs_hw = [r.result.system.speedup_vs_hardware for r in runs]
    area_reduction = [r.result.system.area_ratio_hw_threads for r in runs]
    area_increase = [r.result.system.area_ratio_total for r in runs]
    result = {
        "mean_speedup_vs_sw": arithmetic_mean(twill_vs_sw),
        "geomean_speedup_vs_sw": geometric_mean(twill_vs_sw),
        "mean_speedup_vs_hw": arithmetic_mean(twill_vs_hw),
        "mean_hw_area_reduction": arithmetic_mean(area_reduction),
        "mean_total_area_increase": arithmetic_mean(area_increase),
        "paper_speedup_vs_sw": 22.2,
        "paper_speedup_vs_hw": 1.63,
        "paper_hw_area_reduction": 1.73,
        "paper_total_area_increase": 1.35,
    }
    table = format_result_table(
        ["metric", "measured", "paper"],
        [
            ["Twill speedup vs pure SW (mean)", result["mean_speedup_vs_sw"], result["paper_speedup_vs_sw"]],
            ["Twill speedup vs pure HW (mean)", result["mean_speedup_vs_hw"], result["paper_speedup_vs_hw"]],
            ["HW-thread area reduction", result["mean_hw_area_reduction"], result["paper_hw_area_reduction"]],
            ["Total area increase w/ runtime", result["mean_total_area_increase"], result["paper_total_area_increase"]],
        ],
        title="Results overview (§6.7): measured vs paper",
    )
    result["table"] = table
    return result
