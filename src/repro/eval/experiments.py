"""Generators for every table and figure of thesis Chapter 6.

Each public function returns a dictionary with a ``rows`` list (one entry per
benchmark / sweep point) and a ``table`` string rendered with
:func:`repro.core.report.format_result_table`, so the benchmark harness can
both assert on the numbers and print output that mirrors the corresponding
artefact of the thesis.

Since PR 2 the generators *declare* their work as
:mod:`repro.eval.taskgraph` DAGs instead of looping inline: compile nodes,
one node per (workload, sweep-point), and a parent-side aggregate node that
builds the rows and table from its dependencies' values.  ``run_report``
merges every artefact into one graph, so ``repro report --parallel N``
schedules all workload compiles *and* all sweep points as independent jobs;
``declare_report`` exposes the same graph to ``repro graph`` without
executing it.  Aggregation order is fixed by declaration, so serial and
parallel runs produce byte-identical artefacts.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import CompilerConfig, RuntimeConfig
from repro.core.report import arithmetic_mean, format_result_table, geometric_mean
from repro.errors import ReproError
from repro.eval import taskgraph
from repro.eval.cache import ArtifactCache
from repro.eval.harness import EvaluationHarness
from repro.eval.taskgraph import TaskExecutor, TaskGraph, aggregate_task
from repro.eval.trace import TraceRecorder
from repro.explore.evaluate import explore_task_id
from repro.explore.frontier import Frontier, scalar_cost
from repro.explore.space import report_space
from repro.viz.figures import FIGURE_SPECS, render_figure
from repro.workloads import get_workload


# Sweep points used by the thesis.
QUEUE_LATENCIES = [2, 8, 32, 128]          # Figure 6.5
QUEUE_DEPTHS = [2, 8, 32]                  # Figure 6.6
SPLIT_POINTS = [0.1, 0.25, 0.4, 0.5, 0.6, 0.75]   # Figures 6.3 / 6.4
# Figure 6.6 normalises to the thesis's 8-entry queues; declared separately
# from QUEUE_DEPTHS so editing the swept list cannot orphan the baseline.
FIGURE_6_6_BASE_DEPTH = 8

#: Workload each split-sweep figure is defined over (thesis Figures 6.3/6.4).
SPLIT_FIGURE_WORKLOADS = {"6.3": "mips", "6.4": "blowfish"}


def _harness(
    harness: Optional[EvaluationHarness], config: Optional[CompilerConfig] = None
) -> EvaluationHarness:
    """The harness an experiment runs against.

    An explicit *harness* wins; otherwise the caller's *config* is threaded
    through :meth:`EvaluationHarness.shared`, so ``figure_6_5(config=c)`` and
    ``table_6_1(config=c)`` land on the same shared instance instead of one
    of them silently falling back to the default configuration.
    """
    if harness is not None:
        return harness
    return EvaluationHarness.shared(config=config)


# ---------------------------------------------------------------------------
# shared aggregation helpers
# ---------------------------------------------------------------------------


def _compile_rows(
    results: Dict, names: Sequence[str], row_of: Callable
) -> List[Dict]:
    """One row per benchmark, built from that benchmark's compile artifact.

    The single row-building loop behind every per-benchmark artefact
    (Tables 6.1/6.2, Figures 6.1/6.2): *row_of* maps one
    ``CompilationResult`` (and its registered workload) to a row dict.
    """
    return [
        row_of(results[f"compile:{name}"], get_workload(name)) for name in names
    ]


def _sweep_rows(
    results: Dict,
    names: Sequence[str],
    label: str,
    values: Sequence[int],
    base_value: int,
) -> List[Dict]:
    """One row per benchmark for a runtime sensitivity sweep (Figures 6.5/6.6).

    Each row holds ``{label}_{value}`` speedups normalised to the cycle count
    at *base_value*, read from the ``sweep:{label}:{name}:{value}`` nodes.
    """
    rows = []
    for name in names:
        base_cycles = results[f"sweep:{label}:{name}:{base_value}"]
        entry: Dict = {"benchmark": name}
        for value in values:
            cycles = results[f"sweep:{label}:{name}:{value}"]
            entry[f"{label}_{value}"] = base_cycles / max(cycles, 1e-9)
        rows.append(entry)
    return rows


def _run_one(
    declare: Callable[[TaskGraph, EvaluationHarness], str],
    harness: Optional[EvaluationHarness],
    config: Optional[CompilerConfig],
    parallel: Optional[int],
) -> Dict:
    """Declare one artefact's graph on a fresh :class:`TaskGraph` and run it."""
    harness = _harness(harness, config)
    graph = TaskGraph()
    aggregate_id = declare(graph, harness)
    return harness.execute(graph, parallel=parallel)[aggregate_id]


def _declare_per_benchmark(
    graph: TaskGraph, harness: EvaluationHarness, task_id: str, agg_fn: Callable
) -> str:
    """Declare the common per-benchmark shape: one compile node per workload
    fanning into a single aggregate (Tables 6.1/6.2, Figures 6.1/6.2, §6.7)."""
    names = tuple(harness.benchmark_names)
    deps = [harness.declare_compile(graph, name) for name in names]
    return graph.add(aggregate_task(task_id, agg_fn, deps, (names,)))


# ---------------------------------------------------------------------------
# Table 6.1 — DSWP results: queues, semaphores, hardware threads
# ---------------------------------------------------------------------------


def _agg_table_6_1(results: Dict, names: Tuple[str, ...]) -> Dict:
    def row_of(result, workload):
        summary = result.dswp_summary()
        return {
            "benchmark": result.name,
            "queues": int(summary["queues"]),
            "semaphores": int(summary["semaphores"]),
            "hw_threads": int(summary["hw_threads"]),
            "paper_queues": workload.paper_queues,
            "paper_semaphores": workload.paper_semaphores,
            "paper_hw_threads": workload.paper_hw_threads,
            "sw_fraction": summary["sw_fraction"],
        }

    rows = _compile_rows(results, names, row_of)
    table = format_result_table(
        ["benchmark", "queues", "semaphores", "HW threads", "paper queues", "paper HW threads"],
        [
            [r["benchmark"], r["queues"], r["semaphores"], r["hw_threads"], r["paper_queues"] or 0, r["paper_hw_threads"] or 0]
            for r in rows
        ],
        title="Table 6.1 — DSWP results (measured vs paper)",
    )
    return {"rows": rows, "table": table}


def _declare_table_6_1(graph: TaskGraph, harness: EvaluationHarness) -> str:
    return _declare_per_benchmark(graph, harness, "table:6.1", _agg_table_6_1)


def table_6_1(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    return _run_one(_declare_table_6_1, harness, config, parallel)


# ---------------------------------------------------------------------------
# Table 6.2 — LUT area
# ---------------------------------------------------------------------------


def _agg_table_6_2(results: Dict, names: Tuple[str, ...]) -> Dict:
    def row_of(result, workload):
        system = result.system
        microblaze = system.twill.area.detail.get("microblaze", 0)
        return {
            "benchmark": result.name,
            "legup_luts": system.pure_hardware.area.luts,
            "twill_hwthreads_luts": system.hw_thread_area.luts,
            "twill_luts": system.twill.area.luts - microblaze,
            "twill_plus_microblaze_luts": system.twill.area.luts,
            "hw_thread_area_reduction": system.area_ratio_hw_threads,
        }

    rows = _compile_rows(results, names, row_of)
    table = format_result_table(
        ["benchmark", "LegUp", "Twill HWThreads", "Twill", "Twill + Microblaze"],
        [
            [r["benchmark"], r["legup_luts"], r["twill_hwthreads_luts"], r["twill_luts"], r["twill_plus_microblaze_luts"]]
            for r in rows
        ],
        title="Table 6.2 — FPGA LUTs: LegUp pure HW vs Twill",
    )
    return {"rows": rows, "table": table}


def _declare_table_6_2(graph: TaskGraph, harness: EvaluationHarness) -> str:
    return _declare_per_benchmark(graph, harness, "table:6.2", _agg_table_6_2)


def table_6_2(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    return _run_one(_declare_table_6_2, harness, config, parallel)


# ---------------------------------------------------------------------------
# Figure 6.1 — power normalised to pure software
# ---------------------------------------------------------------------------


def _agg_figure_6_1(results: Dict, names: Tuple[str, ...]) -> Dict:
    def row_of(result, workload):
        norm = result.system.power_normalised()
        return {
            "benchmark": result.name,
            "pure_sw": norm["pure_sw"],
            "pure_hw": norm["pure_hw"],
            "twill": norm["twill"],
        }

    rows = _compile_rows(results, names, row_of)
    table = format_result_table(
        ["benchmark", "pure SW", "pure HW (LegUp)", "Twill"],
        [[r["benchmark"], r["pure_sw"], r["pure_hw"], r["twill"]] for r in rows],
        title="Figure 6.1 — power normalised to the pure MicroBlaze implementation",
    )
    return {"rows": rows, "table": table}


def _declare_figure_6_1(graph: TaskGraph, harness: EvaluationHarness) -> str:
    return _declare_per_benchmark(graph, harness, "figure:6.1", _agg_figure_6_1)


def figure_6_1(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    return _run_one(_declare_figure_6_1, harness, config, parallel)


# ---------------------------------------------------------------------------
# Figure 6.2 — performance speedups normalised to pure software
# ---------------------------------------------------------------------------


def _agg_figure_6_2(results: Dict, names: Tuple[str, ...]) -> Dict:
    def row_of(result, workload):
        system = result.system
        return {
            "benchmark": result.name,
            "pure_hw_speedup": system.hw_speedup_vs_software,
            "twill_speedup": system.speedup_vs_software,
            "twill_vs_hw": system.speedup_vs_hardware,
        }

    rows = _compile_rows(results, names, row_of)
    mean_twill_vs_hw = arithmetic_mean([r["twill_vs_hw"] for r in rows])
    mean_twill_vs_sw = arithmetic_mean([r["twill_speedup"] for r in rows])
    table = format_result_table(
        ["benchmark", "LegUp HW speedup", "Twill speedup", "Twill vs HW"],
        [[r["benchmark"], r["pure_hw_speedup"], r["twill_speedup"], r["twill_vs_hw"]] for r in rows],
        title="Figure 6.2 — speedups normalised to the pure SW implementation",
    )
    return {
        "rows": rows,
        "table": table,
        "mean_twill_vs_hw": mean_twill_vs_hw,
        "mean_twill_vs_sw": mean_twill_vs_sw,
    }


def _declare_figure_6_2(graph: TaskGraph, harness: EvaluationHarness) -> str:
    return _declare_per_benchmark(graph, harness, "figure:6.2", _agg_figure_6_2)


def figure_6_2(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    return _run_one(_declare_figure_6_2, harness, config, parallel)


# ---------------------------------------------------------------------------
# Figures 6.3 / 6.4 — partition-split sweeps (MIPS and Blowfish)
# ---------------------------------------------------------------------------


def _agg_split_sweep(results: Dict, benchmark: str) -> Dict:
    baseline = results[f"compile:{benchmark}"].system.pure_software.cycles
    rows = []
    for split in SPLIT_POINTS:
        data = results[f"sweep:split:{benchmark}:{split}"]
        rows.append(
            {
                "sw_fraction": split,
                "cycles": data["cycles"],
                "queues": int(data["queues"]),
                "speedup_vs_sw": baseline / max(data["cycles"], 1e-9),
            }
        )
    table = format_result_table(
        ["targeted SW share", "Twill cycles", "queues", "speedup vs SW"],
        [[r["sw_fraction"], r["cycles"], r["queues"], r["speedup_vs_sw"]] for r in rows],
        title=f"{benchmark} performance vs targeted partition split point",
    )
    return {"benchmark": benchmark, "rows": rows, "table": table}


def declare_split_sweep(graph: TaskGraph, harness: EvaluationHarness, benchmark: str) -> str:
    """Declare the Figure 6.3/6.4-style split-sweep subgraph for *benchmark*."""
    deps = [harness.declare_compile(graph, benchmark)]
    for split in SPLIT_POINTS:
        deps.append(harness.declare_split_point(graph, benchmark, split))
    return graph.add(
        aggregate_task(f"figure:split:{benchmark}", _agg_split_sweep, deps, (benchmark,))
    )


def split_sweep(
    benchmark: str,
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    """Figure 6.3/6.4-style split sweep for an arbitrary workload (used by the CLI)."""
    return _run_one(
        lambda graph, h: declare_split_sweep(graph, h, benchmark), harness, config, parallel
    )


def figure_6_3(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    """MIPS benchmark performance with various targeted partition split points."""
    return split_sweep("mips", harness, config, parallel)


def figure_6_4(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    """Blowfish benchmark performance with various targeted partition split points."""
    return split_sweep("blowfish", harness, config, parallel)


# ---------------------------------------------------------------------------
# Figure 6.5 — queue latency sensitivity
# ---------------------------------------------------------------------------


def _agg_figure_6_5(results: Dict, names: Tuple[str, ...]) -> Dict:
    rows = _sweep_rows(results, names, "latency", QUEUE_LATENCIES, QUEUE_LATENCIES[0])
    mean_slowdown_128 = 1.0 - arithmetic_mean([r[f"latency_{QUEUE_LATENCIES[-1]}"] for r in rows])
    table = format_result_table(
        ["benchmark"] + [f"lat {latency}" for latency in QUEUE_LATENCIES],
        [[r["benchmark"]] + [r[f"latency_{latency}"] for latency in QUEUE_LATENCIES] for r in rows],
        title="Figure 6.5 — Twill speedup normalised to 2-cycle queue latency",
    )
    return {"rows": rows, "table": table, "mean_slowdown_at_128": mean_slowdown_128}


def _declare_figure_6_5(graph: TaskGraph, harness: EvaluationHarness) -> str:
    names = tuple(harness.benchmark_names)
    deps = []
    for name in names:
        for latency in QUEUE_LATENCIES:
            deps.append(
                harness.declare_runtime_point(
                    graph, name, RuntimeConfig(queue_latency=latency), f"latency:{name}:{latency}"
                )
            )
    return graph.add(aggregate_task("figure:6.5", _agg_figure_6_5, deps, (names,)))


def figure_6_5(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    return _run_one(_declare_figure_6_5, harness, config, parallel)


# ---------------------------------------------------------------------------
# Figure 6.6 — queue length sensitivity
# ---------------------------------------------------------------------------


def _agg_figure_6_6(results: Dict, names: Tuple[str, ...]) -> Dict:
    rows = _sweep_rows(results, names, "depth", QUEUE_DEPTHS, FIGURE_6_6_BASE_DEPTH)
    mean_slowdown_short = 1.0 - arithmetic_mean([r[f"depth_{QUEUE_DEPTHS[0]}"] for r in rows])
    table = format_result_table(
        ["benchmark"] + [f"depth {d}" for d in QUEUE_DEPTHS],
        [[r["benchmark"]] + [r[f"depth_{d}"] for d in QUEUE_DEPTHS] for r in rows],
        title="Figure 6.6 — Twill speedup normalised to 8-entry queues",
    )
    return {"rows": rows, "table": table, "mean_slowdown_at_depth_2": mean_slowdown_short}


def _declare_figure_6_6(graph: TaskGraph, harness: EvaluationHarness) -> str:
    names = tuple(harness.benchmark_names)
    depths = list(dict.fromkeys([FIGURE_6_6_BASE_DEPTH] + QUEUE_DEPTHS))
    deps = []
    for name in names:
        for depth in depths:
            deps.append(
                harness.declare_runtime_point(
                    graph, name, RuntimeConfig(queue_depth=depth), f"depth:{name}:{depth}"
                )
            )
    return graph.add(aggregate_task("figure:6.6", _agg_figure_6_6, deps, (names,)))


def figure_6_6(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    return _run_one(_declare_figure_6_6, harness, config, parallel)


# ---------------------------------------------------------------------------
# §6.7 — headline aggregates
# ---------------------------------------------------------------------------


def _agg_summary(results: Dict, names: Tuple[str, ...]) -> Dict:
    compiled = [results[f"compile:{name}"] for name in names]
    twill_vs_sw = [r.system.speedup_vs_software for r in compiled]
    twill_vs_hw = [r.system.speedup_vs_hardware for r in compiled]
    area_reduction = [r.system.area_ratio_hw_threads for r in compiled]
    area_increase = [r.system.area_ratio_total for r in compiled]
    result = {
        "mean_speedup_vs_sw": arithmetic_mean(twill_vs_sw),
        "geomean_speedup_vs_sw": geometric_mean(twill_vs_sw),
        "mean_speedup_vs_hw": arithmetic_mean(twill_vs_hw),
        "mean_hw_area_reduction": arithmetic_mean(area_reduction),
        "mean_total_area_increase": arithmetic_mean(area_increase),
        "paper_speedup_vs_sw": 22.2,
        "paper_speedup_vs_hw": 1.63,
        "paper_hw_area_reduction": 1.73,
        "paper_total_area_increase": 1.35,
    }
    table = format_result_table(
        ["metric", "measured", "paper"],
        [
            ["Twill speedup vs pure SW (mean)", result["mean_speedup_vs_sw"], result["paper_speedup_vs_sw"]],
            ["Twill speedup vs pure HW (mean)", result["mean_speedup_vs_hw"], result["paper_speedup_vs_hw"]],
            ["HW-thread area reduction", result["mean_hw_area_reduction"], result["paper_hw_area_reduction"]],
            ["Total area increase w/ runtime", result["mean_total_area_increase"], result["paper_total_area_increase"]],
        ],
        title="Results overview (§6.7): measured vs paper",
    )
    result["table"] = table
    return result


def _declare_summary(graph: TaskGraph, harness: EvaluationHarness) -> str:
    return _declare_per_benchmark(graph, harness, "summary:6.7", _agg_summary)


def summary(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> Dict:
    return _run_one(_declare_summary, harness, config, parallel)


# ---------------------------------------------------------------------------
# the report's embedded design-space exploration (repro.explore)
# ---------------------------------------------------------------------------

#: Workloads the report explores (the two the thesis dedicates split-sweep
#: figures to — also the two cheapest to re-simulate); restricted benchmark
#: sets explore the intersection.
EXPLORE_REPORT_WORKLOADS = ("mips", "blowfish")

#: Figure ids of the exploration section (frontier scatter + progress line).
EXPLORE_FIGURE_IDS = ("explore", "explore-progress")


def report_candidates() -> List:
    """The report's exhaustive candidate list (deterministic order).

    The full budgeted search lives behind ``repro explore``; the report
    embeds a small *fixed* exploration — the nine-point
    :func:`repro.explore.space.report_space` enumerated exhaustively — so
    the exploration section stays a pure, declarable function of the
    compile artefacts like every other report artefact.
    """
    return list(report_space().candidates())


def explored_workloads(names: Sequence[str]) -> Tuple[str, ...]:
    """The subset of *names* the report's exploration section covers."""
    return tuple(n for n in EXPLORE_REPORT_WORKLOADS if n in set(names))


def _agg_exploration(results: Dict, names: Tuple[str, ...]) -> Dict:
    """Rows, Pareto flags, per-workload bests and search progress.

    *names* is the tuple of **explored** workloads.  Reads one explore node
    per (workload, report candidate); every derived quantity (frontier
    membership, best-found, the progress curve) is recomputed here from
    those values, so the exploration section can never disagree with the
    cached candidate evaluations.
    """
    candidates = report_candidates()
    space = report_space()
    rows: List[Dict] = []
    best_rows: List[Dict] = []
    progress: Dict[str, List[float]] = {}
    frontier_sizes: Dict[str, int] = {}
    for name in names:
        evaluations = [
            (candidate.params(), results[explore_task_id(name, candidate)])
            for candidate in candidates
        ]
        frontier = Frontier(evaluations)
        frontier_indices = set(frontier.indices)
        frontier_sizes[name] = len(frontier)
        for index, (params, result) in enumerate(evaluations):
            rows.append(
                {
                    "benchmark": name,
                    **params,
                    "cycles": result["cycles"],
                    "area_luts": result["area_luts"],
                    "power_mw": result["power_mw"],
                    "speedup_vs_sw": result["speedup_vs_sw"],
                    "pareto": index in frontier_indices,
                }
            )
        best_params, best_result = min(
            evaluations, key=lambda pair: (scalar_cost(pair[1]), sorted(pair[0].items()))
        )
        best_rows.append(
            {
                "benchmark": name,
                **best_params,
                "cycles": best_result["cycles"],
                "area_luts": best_result["area_luts"],
                "power_mw": best_result["power_mw"],
                "speedup_vs_sw": best_result["speedup_vs_sw"],
            }
        )
        # Best-so-far objective product relative to the first evaluation —
        # the search-progress curve (1.0 = no better than the start).
        curve: List[float] = []
        best_cost = float("inf")
        first_cost: Optional[float] = None
        for _, result in evaluations:
            cost = scalar_cost(result)
            if first_cost is None:
                first_cost = cost
            best_cost = min(best_cost, cost)
            curve.append(math.exp(best_cost - first_cost))
        progress[name] = curve
    table = format_result_table(
        ["benchmark"] + [dim.name for dim in space.dimensions]
        + ["cycles", "area (LUTs)", "power (mW)", "speedup vs SW"],
        [
            [r["benchmark"]] + [r[dim.name] for dim in space.dimensions]
            + [r["cycles"], r["area_luts"], r["power_mw"], r["speedup_vs_sw"]]
            for r in best_rows
        ],
        title="Design-space exploration — best configuration found per workload",
    )
    return {
        "rows": rows,
        "best_rows": best_rows,
        "workloads": list(names),
        "frontier_sizes": frontier_sizes,
        "progress": progress,
        "evaluations_per_workload": len(candidates),
        "table": table,
    }


def declare_exploration(graph: TaskGraph, harness: EvaluationHarness) -> str:
    """Declare the report's exploration subgraph: one ``explore`` node per
    (explored workload, report candidate) fanning into one aggregate."""
    names = explored_workloads(harness.benchmark_names)
    if not names:
        raise ReproError(
            "the report exploration is defined over "
            f"{', '.join(EXPLORE_REPORT_WORKLOADS)}; none is in this benchmark set"
        )
    space = report_space()
    deps: List[str] = []
    for name in names:
        for candidate in report_candidates():
            deps.append(harness.declare_explore_point(graph, name, space, candidate))
    return graph.add(aggregate_task("exploration", _agg_exploration, deps, (names,)))


# ---------------------------------------------------------------------------
# the full report as one graph
# ---------------------------------------------------------------------------

#: Artefact key → declarer, in thesis (and ``repro report``) order; the
#: exploration section follows the thesis artefacts.
ARTEFACT_DECLARERS: Dict[str, Callable[[TaskGraph, EvaluationHarness], str]] = {
    "table_6.1": _declare_table_6_1,
    "table_6.2": _declare_table_6_2,
    "figure_6.1": _declare_figure_6_1,
    "figure_6.2": _declare_figure_6_2,
    "figure_6.3": lambda graph, h: declare_split_sweep(graph, h, "mips"),
    "figure_6.4": lambda graph, h: declare_split_sweep(graph, h, "blowfish"),
    "figure_6.5": _declare_figure_6_5,
    "figure_6.6": _declare_figure_6_6,
    "summary": _declare_summary,
    "exploration": declare_exploration,
}

#: Artefacts that are only defined when a specific workload is in the
#: benchmark set, keyed by their ARTEFACT_DECLARERS name (built from
#: SPLIT_FIGURE_WORKLOADS so the two registries cannot drift apart).
ARTEFACT_REQUIRED_WORKLOAD: Dict[str, str] = {
    f"figure_{figure_id}": workload for figure_id, workload in SPLIT_FIGURE_WORKLOADS.items()
}


# ---------------------------------------------------------------------------
# figure rendering (repro.viz) as first-class render tasks
# ---------------------------------------------------------------------------


def _agg_pareto(results: Dict, names: Tuple[str, ...]) -> Dict:
    """Input data of the area/performance Pareto figure: each benchmark's
    LegUp and Twill (area, speedup) design points, from the compile artefacts."""
    rows = []
    for name in names:
        system = results[f"compile:{name}"].system
        rows.append(
            {
                "benchmark": name,
                "legup_luts": system.pure_hardware.area.luts,
                "legup_speedup": system.hw_speedup_vs_software,
                "twill_luts": system.twill.area.luts,
                "twill_speedup": system.speedup_vs_software,
            }
        )
    return {"rows": rows}


#: Figure id → the pure aggregator producing that figure's input data dict.
#: Render payloads running in pool/remote workers look the function up here
#: by id (functions cannot cross the wire), so every entry must stay a
#: module-level function.
FIGURE_DATA_AGGREGATORS: Dict[str, Callable[..., Dict]] = {
    "6.1": _agg_figure_6_1,
    "6.2": _agg_figure_6_2,
    "6.3": _agg_split_sweep,
    "6.4": _agg_split_sweep,
    "6.5": _agg_figure_6_5,
    "6.6": _agg_figure_6_6,
    "area": _agg_table_6_2,
    "pareto": _agg_pareto,
    # Both exploration figures draw the same aggregated search data.
    "explore": _agg_exploration,
    "explore-progress": _agg_exploration,
}

#: Figures renderable to SVG, in HTML-report order: the six thesis figures
#: plus the two composite figures built from the same compile artefacts.
#: Derived from the FIGURE_SPECS registry so the declarable set can never
#: drift from the renderable set (the aggregator registry above is pinned
#: to it by tests/test_viz.py).
RENDER_FIGURE_IDS: Tuple[str, ...] = tuple(FIGURE_SPECS)


def compute_figure_render(
    figure_id: str,
    dep_ids: Sequence[str],
    dep_keys: Sequence[str],
    agg_arg,
    cache_spec: Optional[str],
    values: Optional[Dict] = None,
) -> str:
    """Render one figure to SVG markup (the ``render`` task payload).

    Runs anywhere: the parent passes the in-memory dependency *values* when
    executing inline, while pool and remote workers rebuild the mapping from
    the shared cache via the (task id, content key) pairs — the same
    "dependency edges guarantee cache presence" contract sweep points rely
    on.  The figure data is produced by the registered aggregator (the same
    function behind the corresponding table/figure artefact, so charts can
    never diverge from the printed numbers) and handed to
    :func:`repro.viz.figures.render_figure`.
    """
    if values is None:
        cache = ArtifactCache.from_spec(cache_spec)
        values = {}
        for task_id, key in zip(dep_ids, dep_keys):
            value = cache.get(key)
            if value is None:
                raise ReproError(
                    f"render:{figure_id} input '{task_id}' is missing from the cache at "
                    f"'{cache_spec}' (evicted mid-run?); re-run to recompute it"
                )
            values[task_id] = value
    aggregator = FIGURE_DATA_AGGREGATORS[figure_id]
    arg = tuple(agg_arg) if isinstance(agg_arg, (list, tuple)) else agg_arg
    return render_figure(figure_id, aggregator(values, arg))


def declare_figure_render(graph: TaskGraph, harness: EvaluationHarness, figure_id: str) -> str:
    """Declare the render node (and its input subgraph) for one figure.

    The render's dependencies are exactly the worker tasks the figure's
    aggregator reads, so its content key —
    :func:`repro.eval.cache.render_key` over the dependency keys — changes
    iff any input artefact (or any code, via the code digest folded into
    every compile key) changes.
    """
    names = tuple(harness.benchmark_names)
    if figure_id in SPLIT_FIGURE_WORKLOADS:
        benchmark = SPLIT_FIGURE_WORKLOADS[figure_id]
        agg_id = declare_split_sweep(graph, harness, benchmark)
        deps = graph.task(agg_id).deps
        agg_arg: object = benchmark
    elif figure_id in ("area", "pareto"):
        deps = tuple(harness.declare_compile(graph, name) for name in names)
        agg_arg = list(names)
    elif figure_id in EXPLORE_FIGURE_IDS:
        explored = explored_workloads(names)
        space = report_space()
        deps = tuple(
            harness.declare_explore_point(graph, name, space, candidate)
            for name in explored
            for candidate in report_candidates()
        )
        agg_arg = list(explored)
    else:
        declarer = ARTEFACT_DECLARERS.get(f"figure_{figure_id}")
        if declarer is None:
            known = ", ".join(RENDER_FIGURE_IDS)
            raise ReproError(f"no renderable figure '{figure_id}' (known: {known})")
        agg_id = declarer(graph, harness)
        deps = graph.task(agg_id).deps
        agg_arg = list(names)
    dep_keys = [graph.task(dep).key for dep in deps]
    return graph.add(
        taskgraph.render_task(
            figure_id, compute_figure_render, deps, dep_keys, agg_arg, harness._cache_root
        )
    )


def declare_report_renders(graph: TaskGraph, harness: EvaluationHarness) -> Dict[str, str]:
    """Declare every renderable figure valid for the harness's benchmark set."""
    names = set(harness.benchmark_names)
    mapping: Dict[str, str] = {}
    for figure_id in RENDER_FIGURE_IDS:
        workload = SPLIT_FIGURE_WORKLOADS.get(figure_id)
        if workload is not None and workload not in names:
            continue
        if figure_id in EXPLORE_FIGURE_IDS and not explored_workloads(names):
            continue
        mapping[figure_id] = declare_figure_render(graph, harness, figure_id)
    return mapping


def figure_svg(
    figure_id: str,
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
) -> str:
    """One figure's SVG markup (``repro figure 6.x --svg``), cache-backed."""
    return _run_one(
        lambda graph, h: declare_figure_render(graph, h, figure_id), harness, config, parallel
    )


def run_report_figures(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
    executor: Optional["TaskExecutor"] = None,
    trace: Optional["TraceRecorder"] = None,
) -> Tuple[Dict[str, Dict], Dict[str, str]]:
    """The full report plus every rendered figure, as one merged task graph.

    Returns ``(artefacts, figures)``: the same artefact mapping
    :func:`run_report` produces, and ``figure id → SVG markup``.  Renders
    share the graph with the artefacts they draw, so ``--parallel``/remote
    workers pipeline compiles, sweep points and figure renders together, and
    a warm ``repro report --html`` re-renders nothing (render tasks hit the
    artifact cache like every other node).
    """
    harness = _harness(harness, config)
    graph = TaskGraph()
    artefact_ids = declare_report(graph, harness)
    render_ids = declare_report_renders(graph, harness)
    results = harness.execute(graph, parallel=parallel, executor=executor, trace=trace)
    artefacts = {artefact: results[task_id] for artefact, task_id in artefact_ids.items()}
    figures = {figure_id: results[task_id] for figure_id, task_id in render_ids.items()}
    return artefacts, figures


def declare_report(graph: TaskGraph, harness: EvaluationHarness) -> Dict[str, str]:
    """Declare every report artefact on *graph*; returns artefact → aggregate id.

    The split-sweep figures are defined over one specific workload each and
    are skipped when the harness's benchmark set excludes it (matching the
    CLI's behaviour for ``--benchmarks`` restrictions).
    """
    names = set(harness.benchmark_names)
    mapping: Dict[str, str] = {}
    for artefact, declare in ARTEFACT_DECLARERS.items():
        workload = ARTEFACT_REQUIRED_WORKLOAD.get(artefact)
        if workload is not None and workload not in names:
            continue
        if artefact == "exploration" and not explored_workloads(names):
            continue
        mapping[artefact] = declare(graph, harness)
    return mapping


def run_report(
    harness: Optional[EvaluationHarness] = None,
    config: Optional[CompilerConfig] = None,
    parallel: Optional[int] = None,
    executor: Optional["TaskExecutor"] = None,
    trace: Optional["TraceRecorder"] = None,
) -> Dict[str, Dict]:
    """Every table, figure and the §6.7 summary, computed as one task graph.

    With ``parallel=N`` all compile nodes and every (workload, sweep-point)
    node across all artefacts schedule as independent jobs; an *executor*
    (e.g. :class:`repro.eval.remote.executor.RemoteExecutor` behind
    ``repro report --workers``) dispatches them to remote workers instead.
    Output is byte-identical to the serial run either way.  *trace* collects
    the per-task spans behind ``repro report --trace``.
    """
    harness = _harness(harness, config)
    graph = TaskGraph()
    mapping = declare_report(graph, harness)
    results = harness.execute(graph, parallel=parallel, executor=executor, trace=trace)
    return {artefact: results[task_id] for artefact, task_id in mapping.items()}
