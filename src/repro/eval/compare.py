"""Figure-by-figure comparison of two report runs (``repro report --compare``).

Feeds on the machine-readable artefact payloads ``repro report --json``
emits: save a baseline once (``repro report --json > baseline.json``), then
``repro report --compare baseline.json`` regenerates the current artefacts
and diffs them **cell by cell** — every ``rows`` entry of every artefact,
plus the scalar headline metrics (the §6.7 summary values) — flagging each
artefact as ``unchanged``, ``changed``, ``added`` or ``removed``.

The output is structured first (:func:`compare_reports` returns a plain
dict, rendered to JSON by ``--json``) with a human table on top: one line
per differing cell, its baseline and current values, and the delta
(absolute and relative for numerics).  Numeric comparison uses a relative
tolerance so an intentional float-format round trip through JSON never
reads as a regression, while any genuine drift — a changed speedup, a
different queue count, a frontier that moved — is caught precisely.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.report import format_result_table

#: Relative tolerance below which two numeric cells count as equal — wide
#: enough for JSON float round-trips, far below any real model change.
REL_TOLERANCE = 1e-9


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _numbers_equal(a: float, b: float, rel_tol: float) -> bool:
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=rel_tol)


def _row_label(row: Dict[str, Any], index: int) -> str:
    """A stable human label for one row (benchmark name where present)."""
    for key in ("benchmark", "metric", "sw_fraction"):
        if key in row:
            return f"{row[key]}"
    return f"#{index}"


def _cell_diff(
    artefact: str,
    row_label: str,
    column: str,
    baseline: Any,
    current: Any,
    rel_tol: float,
) -> Optional[Dict[str, Any]]:
    """One differing cell as a diff record, or ``None`` when equal."""
    if _is_number(baseline) and _is_number(current):
        if _numbers_equal(float(baseline), float(current), rel_tol):
            return None
        delta = float(current) - float(baseline)
        # A zero baseline has no meaningful relative delta; None keeps the
        # --json output strict-parser valid (json.dumps(inf) emits the
        # non-standard token `Infinity`).
        rel = delta / abs(baseline) if baseline else None
        return {
            "artefact": artefact,
            "row": row_label,
            "column": column,
            "baseline": baseline,
            "current": current,
            "delta": delta,
            "rel_delta": rel,
        }
    if baseline == current:
        return None
    return {
        "artefact": artefact,
        "row": row_label,
        "column": column,
        "baseline": baseline,
        "current": current,
        "delta": None,
        "rel_delta": None,
    }


def _artefact_cells(
    artefact: str,
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    rel_tol: float,
) -> List[Dict[str, Any]]:
    """Every differing cell of one artefact: its rows, then its scalars."""
    cells: List[Dict[str, Any]] = []
    base_rows: Sequence[Dict] = baseline.get("rows") or []
    curr_rows: Sequence[Dict] = current.get("rows") or []
    for index in range(max(len(base_rows), len(curr_rows))):
        base_row = base_rows[index] if index < len(base_rows) else {}
        curr_row = curr_rows[index] if index < len(curr_rows) else {}
        label = _row_label(curr_row or base_row, index)
        for column in sorted(set(base_row) | set(curr_row)):
            diff = _cell_diff(
                artefact,
                label,
                column,
                base_row.get(column, "(absent)"),
                curr_row.get(column, "(absent)"),
                rel_tol,
            )
            if diff is not None:
                cells.append(diff)
    scalar_keys = sorted(
        key
        for key in set(baseline) | set(current)
        if key not in ("rows", "table") and (_is_number(baseline.get(key)) or _is_number(current.get(key)))
    )
    for key in scalar_keys:
        diff = _cell_diff(
            artefact, "(scalar)", key, baseline.get(key, "(absent)"),
            current.get(key, "(absent)"), rel_tol,
        )
        if diff is not None:
            cells.append(diff)
    return cells


def _artefact_payloads(payload: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Accept either a full ``report --json`` payload or a bare artefact map."""
    if "artefacts" in payload and isinstance(payload["artefacts"], dict):
        return payload["artefacts"]
    return payload


def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    rel_tol: float = REL_TOLERANCE,
) -> Dict[str, Any]:
    """Diff two report payloads; returns the structured comparison document.

    The document carries per-artefact status flags, the list of changed
    artefact keys, every differing cell, and a rendered ``table`` string for
    terminal output.  Two byte-identical runs produce ``changed: []`` and an
    explicit all-clear table.
    """
    current_artefacts = _artefact_payloads(current)
    baseline_artefacts = _artefact_payloads(baseline)
    artefact_keys = sorted(set(current_artefacts) | set(baseline_artefacts))
    statuses: Dict[str, str] = {}
    all_cells: List[Dict[str, Any]] = []
    for key in artefact_keys:
        in_base = key in baseline_artefacts
        in_curr = key in current_artefacts
        if not in_base:
            statuses[key] = "added"
            continue
        if not in_curr:
            statuses[key] = "removed"
            continue
        cells = _artefact_cells(
            key, baseline_artefacts[key], current_artefacts[key], rel_tol
        )
        statuses[key] = "changed" if cells else "unchanged"
        all_cells.extend(cells)
    changed = sorted(k for k, status in statuses.items() if status != "unchanged")
    return {
        "changed": changed,
        "statuses": statuses,
        "cells": all_cells,
        "table": _render_table(statuses, all_cells),
    }


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _render_table(statuses: Dict[str, str], cells: List[Dict[str, Any]]) -> str:
    """The human-readable diff: a status summary plus one line per cell."""
    lines: List[str] = []
    flagged = {k: s for k, s in statuses.items() if s != "unchanged"}
    unchanged = sum(1 for s in statuses.values() if s == "unchanged")
    if not flagged:
        lines.append(
            f"report comparison: all {unchanged} artefacts match the baseline"
        )
        return "\n".join(lines)
    summary = ", ".join(f"{key} ({status})" for key, status in sorted(flagged.items()))
    lines.append(
        f"report comparison: {len(flagged)} artefact(s) differ, {unchanged} unchanged"
    )
    lines.append(f"changed: {summary}")
    if cells:
        rows: List[List[Any]] = []
        for cell in cells:
            delta = cell["delta"]
            rel = cell["rel_delta"]
            rows.append(
                [
                    cell["artefact"],
                    cell["row"],
                    cell["column"],
                    _format_value(cell["baseline"]),
                    _format_value(cell["current"]),
                    f"{delta:+.6g}" if delta is not None else "-",
                    f"{rel * 100:+.3f}%" if rel is not None else "-",
                ]
            )
        lines.append("")
        lines.append(
            format_result_table(
                ["artefact", "row", "column", "baseline", "current", "delta", "rel"],
                rows,
                title="Per-cell differences vs baseline",
            )
        )
    return "\n".join(lines)
