"""Content-addressed artifact cache for the evaluation harness.

Compiling a workload (front end, passes, functional trace, DSWP, HLS, three
timing replays) costs seconds; the sweeps behind Figures 6.3-6.6 re-simulate
the full dynamic trace dozens of times on top of that.  This module caches
both kinds of artifact so any table or figure can be regenerated
near-instantly once its inputs have been computed once:

* **compile artifacts** — :class:`repro.core.compiler.CompilationResult`
  objects stored through the structured codec in
  :mod:`repro.eval.artifact_codec` (magic line + one canonical JSON
  document: inspectable, stable across Python versions, and loadable
  without executing stored code), keyed by the SHA-256 of the workload's C
  source plus the full :class:`repro.config.CompilerConfig` contents;
* **derived artifacts** — small structured-JSON documents produced by
  re-simulating an existing compile artifact under different parameters
  (queue latency, queue depth, partition split), keyed by the parent compile
  key plus the sweep kind and its parameters.  JSON (unlike pickle) executes
  no code on load, so the hot read path of a warm report does not require a
  trusted cache directory.

Since PR 3 *where* the bytes live is pluggable: :class:`ArtifactCache` holds
the key scheme, serialisation and single-flight logic, and delegates blob
storage to a :class:`CacheBackend` — :class:`LocalFSBackend` (the historical
``.repro_cache/`` directory layout) or the HTTP client in
:mod:`repro.eval.remote.cache_http` talking to a ``repro cache serve``
service, so several worker machines can share one artifact store.  A cache
is addressed by a *spec* string — a filesystem path or an ``http(s)://``
URL — resolved by :meth:`ArtifactCache.from_spec`.

Keys are *content addresses*: they hash every input that can change the
output, plus a schema version bumped whenever the stored layout changes.
There is therefore no invalidation protocol — editing a workload source,
changing any config knob, or bumping the schema simply computes a different
key, and stale entries are never read again (``repro cache clear`` removes
them; ``repro cache prune --max-bytes`` evicts least-recently-used entries).
Writes go through a temp file + :func:`os.replace` so a cache shared by
concurrent processes never exposes a half-written entry, and
:meth:`ArtifactCache.get_or_compute` adds per-key advisory locks so
concurrent missers of the same key do the work once (single-flight).

Pickled entries can additionally be wrapped in an HMAC-SHA256 signed
envelope (key from ``RuntimeConfig.cache_hmac_key`` or the
``REPRO_CACHE_HMAC_KEY`` environment variable), so a cache shared over the
network no longer requires a trusted directory: an entry that does not carry
a valid signature under the reader's key is treated as a miss and recomputed
instead of unpickled.  See ``docs/CACHING.md`` for the full layout, key and
envelope scheme.
"""

from __future__ import annotations

import contextlib
import hashlib
import hmac as hmac_mod
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

try:  # POSIX-only; the lock degrades to best-effort elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.config import CompilerConfig
from repro.errors import CacheIntegrityError, ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing

#: Client-side store telemetry (every process embedding an ArtifactCache).
#: The cache *service* keeps its own server-side hit/miss counters in
#: repro.eval.remote.cache_http; these observe local lookups.
_LOOKUPS = obs_metrics.counter(
    "repro_cache_client_lookups_total", "ArtifactCache lookups in this process, by outcome."
)
_PUTS = obs_metrics.counter(
    "repro_cache_client_puts_total", "ArtifactCache stores performed by this process."
)
_EVICTIONS = obs_metrics.counter(
    "repro_cache_evictions_total", "Entries evicted by LRU pruning in this process."
)

# Bump whenever the stored artifact layout changes incompatibly (e.g. a field
# is added to CompilationResult): old entries then miss instead of loading
# into a stale shape.
CACHE_SCHEMA_VERSION = 2

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable supplying the HMAC key for signed pickle envelopes.
CACHE_HMAC_ENV = "REPRO_CACHE_HMAC_KEY"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Storage formats an entry can use: ``artifact`` for compile artifacts
#: (the structured non-pickle codec in :mod:`repro.eval.artifact_codec`),
#: ``json`` for structured derived artifacts, ``pickle`` for arbitrary
#: Python objects (DSWP stage artifacts, and compile artifacts whose
#: configuration the structured codec cannot express).
SERIALIZERS = ("pickle", "json", "artifact")

#: Orphaned ``*.tmp`` files older than this are swept by prune(); younger
#: ones may be a concurrent writer's in-flight put and are left alone.
ORPHAN_TMP_MAX_AGE_SECONDS = 3600.0

#: First line of the signed-pickle envelope; versioned independently of the
#: cache schema so the envelope format can evolve without invalidating
#: unsigned caches.
HMAC_ENVELOPE_MAGIC = b"repro-hmac-v1\n"

_EXTENSIONS = {"pickle": ".pkl", "json": ".json", "artifact": ".art"}


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


# -- process-wide HMAC key ------------------------------------------------------

_process_hmac_key: Optional[str] = None


def set_process_hmac_key(key: Optional[str]) -> Optional[str]:
    """Set the process-default envelope key (worker daemons, pool workers).

    Caches constructed without an explicit ``hmac_key`` pick this up, falling
    back to ``$REPRO_CACHE_HMAC_KEY``.  ``None`` restores the env fallback.
    Returns the previous override so a scoped caller (the scheduler) can
    restore it instead of leaking a run's key into the rest of the process.
    """
    global _process_hmac_key
    previous = _process_hmac_key
    _process_hmac_key = key or None
    return previous


def process_hmac_key() -> Optional[str]:
    """The effective default envelope key for this process (may be ``None``)."""
    if _process_hmac_key:
        return _process_hmac_key
    return os.environ.get(CACHE_HMAC_ENV) or None


# -- content addresses ----------------------------------------------------------

_code_digest_cache: Optional[str] = None


def code_digest() -> str:
    """Digest of the ``repro`` package's own source tree (memoised per process).

    Folded into every compile key so editing any compiler/simulator module
    invalidates previously cached artifacts — without this, a code change
    would silently serve stale results until a manual ``repro cache clear``.
    Hashing the ~100 source files costs a few milliseconds, once per process.
    """
    global _code_digest_cache
    if _code_digest_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_digest_cache = digest.hexdigest()
    return _code_digest_cache


def compile_key(source: str, config: CompilerConfig) -> str:
    """Content address of one compile artifact.

    Hashes the workload's C source, every knob of *config*, the ``repro``
    package's own source tree, and the cache schema version.  Any change to
    any of them yields a fresh key.
    """
    digest = hashlib.sha256()
    digest.update(f"schema:{CACHE_SCHEMA_VERSION}\n".encode("utf-8"))
    digest.update(f"code:{code_digest()}\n".encode("utf-8"))
    digest.update(f"config:{config.content_hash()}\n".encode("utf-8"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def derived_key(parent_key: str, kind: str, params: Dict[str, Any]) -> str:
    """Content address of a derived (re-simulated) artifact.

    *parent_key* is the compile key of the artifact being re-simulated, *kind*
    names the sweep (``"runtime"`` or ``"split"``) and *params* are its
    JSON-serialisable parameters.
    """
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(f"derived:{parent_key}:{kind}\n".encode("utf-8"))
    digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


def render_key(figure_id: str, dep_keys: "List[str]") -> str:
    """Content address of one rendered figure (its SVG markup).

    A figure is a pure function of its input artefacts and of the rendering
    code, so hashing the figure id plus the dependency content keys *is* a
    content address: every dependency key chains back to the workload source,
    the full configuration and :func:`code_digest` (which covers the
    ``repro.viz`` modules), so editing any of them re-keys the render.
    """
    digest = hashlib.sha256()
    digest.update(f"render:{figure_id}\n".encode("utf-8"))
    for key in dep_keys:
        digest.update(key.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# storage backends
# ---------------------------------------------------------------------------


class CacheBackend:
    """Where cache blobs live.  Implementations move *bytes*, never objects.

    :class:`ArtifactCache` owns serialisation (pickle/JSON plus the optional
    HMAC envelope) and single-flight orchestration; a backend only has to
    store, retrieve and advisory-lock opaque blobs by content key.  ``spec``
    is the string that reconstructs an equivalent backend in another process
    (a directory path, or an ``http://`` URL) — it is what the task graph
    ships to worker processes instead of the cache object itself.
    """

    #: Round-trippable address of this backend (path or URL).
    spec: str = ""

    def get_blob(self, key: str) -> Optional[Tuple[str, bytes]]:
        """Return ``(serializer, payload)`` for *key*, or ``None`` on a miss."""
        raise NotImplementedError

    def put_blob(self, key: str, serializer: str, data: bytes) -> Optional[Path]:
        """Store *data* under *key*; must be atomic w.r.t. concurrent readers.

        Returns the stored entry's path where one exists (local backends)."""
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Best-effort removal of a (corrupt) entry; may be a no-op remotely."""
        raise NotImplementedError

    @contextlib.contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Advisory per-key exclusive lock.  Purely an anti-duplication
        measure: correctness never depends on it, so implementations may
        degrade to a no-op."""
        yield

    def discard_lock_file(self, key: str) -> None:
        """Drop any persistent artefact of :meth:`lock` for *key* (used by the
        scheduler's interrupt cleanup); a no-op where locks are leases."""

    def stats(self) -> Dict[str, Any]:
        raise NotImplementedError


class LocalFSBackend(CacheBackend):
    """The historical on-disk layout: ``<root>/objects/<key[:2]>/<key>{.pkl,.json}``.

    Git-style fan-out so a directory never accumulates thousands of files.
    Safe to share between concurrent processes for *writes* (temp file +
    atomic rename); reads of a key only ever see a complete entry or a miss.
    Per-key ``flock`` files under ``<root>/locks/`` provide the advisory
    single-flight locks.  A read hit refreshes the entry's mtime, which is
    the recency clock :meth:`prune` evicts by.
    """

    def __init__(self, root: Path):
        self.root = Path(root)

    @property
    def spec(self) -> str:  # type: ignore[override]
        return str(self.root)

    # -- paths -----------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def locks_dir(self) -> Path:
        return self.root / "locks"

    def _path(self, key: str, serializer: str = "pickle") -> Path:
        return self.objects_dir / key[:2] / f"{key}{_EXTENSIONS[serializer]}"

    def _entry_paths(self) -> List[Path]:
        """Every stored entry, in a stable order (JSON and pickle alike)."""
        if not self.objects_dir.is_dir():
            return []
        return sorted(
            p for p in self.objects_dir.rglob("*") if p.suffix in (".pkl", ".json", ".art")
        )

    # -- blobs -----------------------------------------------------------------

    def get_blob(self, key: str) -> Optional[Tuple[str, bytes]]:
        for serializer in ("artifact", "json", "pickle"):
            path = self._path(key, serializer)
            try:
                data = path.read_bytes()
            except (FileNotFoundError, OSError):
                continue
            try:  # LRU bookkeeping only; never worth failing a hit over.
                os.utime(path)
            except OSError:
                pass
            return serializer, data
        return None

    def put_blob(self, key: str, serializer: str, data: bytes) -> Path:
        path = self._path(key, serializer)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # Drop a twin in the other format (e.g. a pre-JSON pickle of the same
        # derived key) so one key never has two competing entries.
        for other in SERIALIZERS:
            if other != serializer:
                try:
                    self._path(key, other).unlink()
                except OSError:
                    pass
        return path

    def contains(self, key: str) -> bool:
        return any(self._path(key, fmt).is_file() for fmt in SERIALIZERS)

    def delete(self, key: str) -> None:
        for serializer in SERIALIZERS:
            try:
                self._path(key, serializer).unlink()
            except OSError:
                pass

    # -- single-flight ---------------------------------------------------------

    @contextlib.contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Advisory per-key exclusive lock (``flock``) shared across processes.

        Purely an anti-duplication measure: correctness never depends on it
        (writes are atomic), so on platforms without ``fcntl`` it degrades to
        a no-op and concurrent missers merely duplicate work.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        with open(lock_path, "a") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def lock_path(self, key: str) -> Path:
        return self.locks_dir / key[:2] / f"{key}.lock"

    def discard_lock_file(self, key: str) -> None:
        try:
            self.lock_path(key).unlink()
        except OSError:
            pass

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also sweeps ``*.tmp`` files orphaned by writers killed mid-`put` and
        the per-key lock files (neither is counted as an entry).
        """
        removed = 0
        for entry in self._entry_paths():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        if self.objects_dir.is_dir():
            for orphan in sorted(self.objects_dir.rglob("*.tmp")):
                try:
                    orphan.unlink()
                except OSError:
                    pass
        if self.locks_dir.is_dir():
            for lock_file in sorted(self.locks_dir.rglob("*.lock")):
                try:
                    lock_file.unlink()
                except OSError:
                    pass
        return removed

    def prune(self, max_bytes: int) -> Dict[str, Any]:
        """Evict least-recently-used entries until the cache fits *max_bytes*.

        Recency is the entry mtime, which :meth:`get_blob` refreshes on every
        hit and :meth:`put_blob` sets on write, so eviction order is true
        LRU.  Stale orphaned temp files are swept first (they count against
        the budget in :meth:`stats`), and each evicted entry takes its lock
        file with it.  Returns a summary dict (entries/bytes removed and
        remaining).
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        removed = 0
        freed = 0
        # Orphaned temp files (writers killed mid-put) count against the
        # budget in stats(), so sweep the stale ones first or the cache could
        # exceed the bound forever; recent ones may be in-flight writes and
        # are left for the next prune.
        if self.objects_dir.is_dir():
            stale_before = time.time() - ORPHAN_TMP_MAX_AGE_SECONDS
            for orphan in sorted(self.objects_dir.rglob("*.tmp")):
                try:
                    stat = orphan.stat()
                    if stat.st_mtime < stale_before:
                        orphan.unlink()
                        freed += stat.st_size
                except OSError:
                    pass
        entries: List[Tuple[float, int, Path]] = []
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        for _, size, path in sorted(entries, key=lambda item: (item[0], str(item[2]))):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
            _EVICTIONS.inc()
            # Sweep the evicted key's lock file too, or a long-lived LRU-bounded
            # cache would still grow one permanent empty file per key ever seen.
            self.discard_lock_file(path.stem)
        return {
            "root": str(self.root),
            "max_bytes": max_bytes,
            "removed_entries": removed,
            "freed_bytes": freed,
            "remaining_entries": len(entries) - removed,
            "remaining_bytes": total,
        }

    def stats(self) -> Dict[str, Any]:
        """Entry count and total size (orphaned temp files included), for
        ``repro cache stats``."""
        entries = self._entry_paths()
        orphans: List[Path] = []
        if self.objects_dir.is_dir():
            orphans = list(self.objects_dir.rglob("*.tmp"))
        total = 0
        for entry in entries + orphans:
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "entries": len(entries),
            "orphaned_tmp": len(orphans),
            "total_bytes": total,
            "schema_version": CACHE_SCHEMA_VERSION,
        }


# ---------------------------------------------------------------------------
# signed-pickle envelope
# ---------------------------------------------------------------------------


def sign_envelope(payload: bytes, key: str) -> bytes:
    """Wrap *payload* in the HMAC-SHA256 envelope: magic, hex mac, payload."""
    mac = hmac_mod.new(key.encode("utf-8"), payload, hashlib.sha256).hexdigest()
    return HMAC_ENVELOPE_MAGIC + mac.encode("ascii") + b"\n" + payload


def open_envelope(data: bytes, key: str) -> bytes:
    """Verify and strip the envelope; raises :class:`CacheIntegrityError` when
    the envelope is absent, malformed, or signed with a different key."""
    if not data.startswith(HMAC_ENVELOPE_MAGIC):
        raise CacheIntegrityError("cached entry is not HMAC-enveloped")
    rest = data[len(HMAC_ENVELOPE_MAGIC):]
    mac, sep, payload = rest.partition(b"\n")
    if not sep:
        raise CacheIntegrityError("malformed HMAC envelope")
    expected = hmac_mod.new(key.encode("utf-8"), payload, hashlib.sha256).hexdigest()
    if not hmac_mod.compare_digest(mac.decode("ascii", "replace"), expected):
        raise CacheIntegrityError("HMAC signature mismatch on cached entry")
    return payload


# ---------------------------------------------------------------------------
# the cache proper
# ---------------------------------------------------------------------------


class ArtifactCache:
    """Key scheme + serialisation + single-flight over a :class:`CacheBackend`.

    ``ArtifactCache(root)`` keeps the historical local-directory behaviour;
    ``ArtifactCache.from_spec(spec)`` also accepts an ``http(s)://`` URL and
    builds the :mod:`repro.eval.remote.cache_http` client, so worker
    processes on other machines can share one store.  When *hmac_key* is set
    (explicitly, via :func:`set_process_hmac_key`, or via
    ``$REPRO_CACHE_HMAC_KEY``), pickled entries are written inside a signed
    envelope and entries failing verification read as misses.
    """

    def __init__(
        self,
        root: Optional[Union[Path, str]] = None,
        backend: Optional[CacheBackend] = None,
        hmac_key: Optional[str] = None,
    ):
        if backend is not None:
            self.backend = backend
        else:
            self.backend = LocalFSBackend(Path(root) if root is not None else default_cache_dir())
        self.hmac_key = hmac_key if hmac_key else process_hmac_key()

    @classmethod
    def from_spec(
        cls, spec: Optional[Union[Path, str]] = None, hmac_key: Optional[str] = None
    ) -> "ArtifactCache":
        """Build a cache from its address string: a path, or an HTTP(S) URL."""
        if spec is not None and str(spec).startswith(("http://", "https://")):
            from repro.eval.remote.cache_http import HTTPCacheBackend

            return cls(backend=HTTPCacheBackend(str(spec)), hmac_key=hmac_key)
        return cls(root=spec, hmac_key=hmac_key)

    @property
    def spec(self) -> str:
        """The string that reconstructs an equivalent cache in any process."""
        return self.backend.spec

    # -- local-backend passthroughs (maintenance, tests) ---------------------------

    @property
    def _local(self) -> LocalFSBackend:
        if not isinstance(self.backend, LocalFSBackend):
            raise ReproError(
                "this cache operation needs a local cache directory; "
                f"'{self.spec}' is remote — run it on the cache server host"
            )
        return self.backend

    @property
    def root(self) -> Optional[Path]:
        return self.backend.root if isinstance(self.backend, LocalFSBackend) else None

    @property
    def objects_dir(self) -> Path:
        return self._local.objects_dir

    @property
    def locks_dir(self) -> Path:
        return self._local.locks_dir

    def _path(self, key: str, serializer: str = "pickle") -> Path:
        return self._local._path(key, serializer)

    # -- serialisation ---------------------------------------------------------------

    def _encode(self, value: Any, serializer: str) -> bytes:
        if serializer == "json":
            return json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
        if serializer == "artifact":
            # Structured compile-artifact codec: inspectable, cross-version
            # stable, and — like JSON — executes no code on load, so it needs
            # no HMAC envelope even on an untrusted/shared store.
            from repro.eval.artifact_codec import encode_compilation_result

            return encode_compilation_result(value)
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        if self.hmac_key:
            data = sign_envelope(data, self.hmac_key)
        return data

    def _decode(self, data: bytes, serializer: str) -> Any:
        if serializer == "json":
            return json.loads(data.decode("utf-8"))
        if serializer == "artifact":
            from repro.eval.artifact_codec import decode_compilation_result

            return decode_compilation_result(data)
        if self.hmac_key:
            # With a key configured, *only* validly signed entries are ever
            # unpickled; anything else (unsigned legacy entry, tampered or
            # foreign bytes) raises and reads as a miss.
            data = open_envelope(data, self.hmac_key)
        elif data.startswith(HMAC_ENVELOPE_MAGIC):
            # A key-less reader must neither unpickle nor destroy an entry
            # some keyed writer signed; it just cannot use it.
            raise CacheIntegrityError("entry is HMAC-enveloped but no key is configured")
        return pickle.loads(data)

    # -- store ---------------------------------------------------------------------

    def contains(self, key: str) -> bool:
        return self.backend.contains(key)

    def get(self, key: str) -> Optional[Any]:
        """Load the entry for *key*, or ``None`` on a miss.

        A genuinely corrupt or unreadable entry is deleted (where the
        backend supports it) so the recompute overwrites it.  An *envelope
        mismatch* — unsigned vs this reader's key, signed vs a key-less or
        differently-keyed reader — also reads as a miss but is **not**
        deleted: the entry may be perfectly valid for correctly configured
        readers, and one misconfigured process must not wipe a shared store
        it merely reads.
        """
        blob = self.backend.get_blob(key)
        if blob is None:
            _LOOKUPS.inc(outcome="miss")
            return None
        serializer, data = blob
        try:
            value = self._decode(data, serializer)
        except CacheIntegrityError:
            _LOOKUPS.inc(outcome="integrity_miss")
            return None
        except Exception:
            self.backend.delete(key)
            _LOOKUPS.inc(outcome="corrupt_miss")
            return None
        _LOOKUPS.inc(outcome="hit")
        return value

    def put(self, key: str, value: Any, serializer: str = "pickle") -> Optional[Path]:
        """Atomically store *value* under *key*; returns its path when local."""
        if serializer not in SERIALIZERS:
            raise ValueError(f"unknown serializer '{serializer}' (expected one of {SERIALIZERS})")
        if value is None:
            # None is get()'s miss signal; storing it would make the entry
            # look permanently missing and silently recompute on every read.
            raise ValueError("refusing to cache None (indistinguishable from a miss)")
        _PUTS.inc()
        return self.backend.put_blob(key, serializer, self._encode(value, serializer))

    # -- single-flight -------------------------------------------------------------

    def lock(self, key: str):
        """Advisory per-key exclusive lock (see the backend for semantics)."""
        return self.backend.lock(key)

    def discard_lock_file(self, key: str) -> None:
        """Remove the persistent lock artefact for *key* (interrupt cleanup)."""
        self.backend.discard_lock_file(key)

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], serializer: str = "pickle"
    ) -> Any:
        """Return the entry for *key*, computing and storing it on a miss.

        Single-flight across processes (and, through the HTTP backend, across
        machines): a miss takes the per-key lock before computing, so a
        concurrent process missing on the same key blocks on the lock,
        re-checks, and reuses the freshly stored entry instead of recomputing
        it.
        """
        with obs_tracing.span("cache.get_or_compute", kind="cache", key=key[:16]) as span:
            hit = self.get(key)
            if hit is not None:
                span.set("cache_hit", True)
                return hit
            with self.lock(key):
                hit = self.get(key)  # someone else may have computed it meanwhile
                if hit is not None:
                    span.set("cache_hit", True)
                    return hit
                span.set("cache_hit", False)
                value = compute()
                self.put(key, value, serializer=serializer)
                return value

    # -- maintenance ---------------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (local backends only)."""
        return self._local.clear()

    def prune(self, max_bytes: int) -> Dict[str, Any]:
        """LRU-evict entries until the cache fits *max_bytes* (local only)."""
        return self._local.prune(max_bytes)

    def stats(self) -> Dict[str, Any]:
        """Entry count and total size, for ``repro cache stats``.

        Works against both backends: the HTTP backend asks the cache service,
        which reports its own local store.
        """
        return self.backend.stats()
