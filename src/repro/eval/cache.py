"""Content-addressed on-disk artifact cache for the evaluation harness.

Compiling a workload (front end, passes, functional trace, DSWP, HLS, three
timing replays) costs seconds; the sweeps behind Figures 6.3-6.6 re-simulate
the full dynamic trace dozens of times on top of that.  This module caches
both kinds of artifact under ``.repro_cache/`` so any table or figure can be
regenerated near-instantly once its inputs have been compiled once:

* **compile artifacts** — pickled :class:`repro.core.compiler.CompilationResult`
  objects, keyed by the SHA-256 of the workload's C source plus the full
  :class:`repro.config.CompilerConfig` contents;
* **derived artifacts** — small pickled dictionaries produced by re-simulating
  an existing compile artifact under different parameters (queue latency,
  queue depth, partition split), keyed by the parent compile key plus the
  sweep kind and its parameters.

Keys are *content addresses*: they hash every input that can change the
output, plus a schema version bumped whenever the pickled layout changes.
There is therefore no invalidation protocol — editing a workload source,
changing any config knob, or bumping the schema simply computes a different
key, and stale entries are never read again (``repro cache clear`` removes
them).  Writes go through a temp file + :func:`os.replace` so a cache shared
by concurrent processes never exposes a half-written pickle.

See ``docs/CACHING.md`` for the full layout and key scheme.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.config import CompilerConfig

# Bump whenever the pickled artifact layout changes incompatibly (e.g. a field
# is added to CompilationResult): old entries then miss instead of unpickling
# into a stale shape.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


_code_digest_cache: Optional[str] = None


def code_digest() -> str:
    """Digest of the ``repro`` package's own source tree (memoised per process).

    Folded into every compile key so editing any compiler/simulator module
    invalidates previously cached artifacts — without this, a code change
    would silently serve stale results until a manual ``repro cache clear``.
    Hashing the ~90 source files costs a few milliseconds, once per process.
    """
    global _code_digest_cache
    if _code_digest_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_digest_cache = digest.hexdigest()
    return _code_digest_cache


def compile_key(source: str, config: CompilerConfig) -> str:
    """Content address of one compile artifact.

    Hashes the workload's C source, every knob of *config*, the ``repro``
    package's own source tree, and the cache schema version.  Any change to
    any of them yields a fresh key.
    """
    digest = hashlib.sha256()
    digest.update(f"schema:{CACHE_SCHEMA_VERSION}\n".encode("utf-8"))
    digest.update(f"code:{code_digest()}\n".encode("utf-8"))
    digest.update(f"config:{config.content_hash()}\n".encode("utf-8"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def derived_key(parent_key: str, kind: str, params: Dict[str, Any]) -> str:
    """Content address of a derived (re-simulated) artifact.

    *parent_key* is the compile key of the artifact being re-simulated, *kind*
    names the sweep (``"runtime"`` or ``"split"``) and *params* are its
    JSON-serialisable parameters.
    """
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(f"derived:{parent_key}:{kind}\n".encode("utf-8"))
    digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


class ArtifactCache:
    """Pickle-on-disk store addressed by the key functions above.

    Entries live at ``<root>/objects/<key[:2]>/<key>.pkl`` (git-style fan-out
    so a directory never accumulates thousands of files).  The cache is safe
    to share between concurrent processes for *writes* (atomic rename); reads
    of a key only ever see a complete entry or a miss.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- paths ---------------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def _path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.pkl"

    # -- store ---------------------------------------------------------------------

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def get(self, key: str) -> Optional[Any]:
        """Load the entry for *key*, or ``None`` on a miss.

        A corrupt or unreadable entry (e.g. written by an incompatible Python)
        is treated as a miss and deleted so the caller recomputes it.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, value: Any) -> Path:
        """Atomically store *value* under *key* and return its path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- maintenance ---------------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also sweeps ``*.tmp`` files orphaned by writers killed mid-`put`
        (they are not counted as entries).
        """
        removed = 0
        if not self.objects_dir.is_dir():
            return removed
        for entry in sorted(self.objects_dir.rglob("*.pkl")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        for orphan in sorted(self.objects_dir.rglob("*.tmp")):
            try:
                orphan.unlink()
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, Any]:
        """Entry count and total size (orphaned temp files included), for
        ``repro cache stats``."""
        entries: List[Path] = []
        orphans: List[Path] = []
        if self.objects_dir.is_dir():
            entries = list(self.objects_dir.rglob("*.pkl"))
            orphans = list(self.objects_dir.rglob("*.tmp"))
        total = 0
        for entry in entries + orphans:
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "entries": len(entries),
            "orphaned_tmp": len(orphans),
            "total_bytes": total,
            "schema_version": CACHE_SCHEMA_VERSION,
        }
