"""Content-addressed on-disk artifact cache for the evaluation harness.

Compiling a workload (front end, passes, functional trace, DSWP, HLS, three
timing replays) costs seconds; the sweeps behind Figures 6.3-6.6 re-simulate
the full dynamic trace dozens of times on top of that.  This module caches
both kinds of artifact under ``.repro_cache/`` so any table or figure can be
regenerated near-instantly once its inputs have been computed once:

* **compile artifacts** — pickled :class:`repro.core.compiler.CompilationResult`
  objects, keyed by the SHA-256 of the workload's C source plus the full
  :class:`repro.config.CompilerConfig` contents;
* **derived artifacts** — small structured-JSON documents produced by
  re-simulating an existing compile artifact under different parameters
  (queue latency, queue depth, partition split), keyed by the parent compile
  key plus the sweep kind and its parameters.  JSON (unlike pickle) executes
  no code on load, so the hot read path of a warm report does not require a
  trusted cache directory.

Keys are *content addresses*: they hash every input that can change the
output, plus a schema version bumped whenever the stored layout changes.
There is therefore no invalidation protocol — editing a workload source,
changing any config knob, or bumping the schema simply computes a different
key, and stale entries are never read again (``repro cache clear`` removes
them; ``repro cache prune --max-bytes`` evicts least-recently-used entries).
Writes go through a temp file + :func:`os.replace` so a cache shared by
concurrent processes never exposes a half-written entry, and
:meth:`ArtifactCache.get_or_compute` adds per-key advisory file locks so
concurrent missers of the same key do the work once (single-flight).

See ``docs/CACHING.md`` for the full layout and key scheme.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

try:  # POSIX-only; the lock degrades to best-effort elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.config import CompilerConfig

# Bump whenever the stored artifact layout changes incompatibly (e.g. a field
# is added to CompilationResult): old entries then miss instead of loading
# into a stale shape.
CACHE_SCHEMA_VERSION = 2

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Storage formats an entry can use: ``pickle`` for arbitrary Python objects
#: (compile artifacts), ``json`` for structured derived artifacts.
SERIALIZERS = ("pickle", "json")

#: Orphaned ``*.tmp`` files older than this are swept by prune(); younger
#: ones may be a concurrent writer's in-flight put and are left alone.
ORPHAN_TMP_MAX_AGE_SECONDS = 3600.0

_EXTENSIONS = {"pickle": ".pkl", "json": ".json"}


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


_code_digest_cache: Optional[str] = None


def code_digest() -> str:
    """Digest of the ``repro`` package's own source tree (memoised per process).

    Folded into every compile key so editing any compiler/simulator module
    invalidates previously cached artifacts — without this, a code change
    would silently serve stale results until a manual ``repro cache clear``.
    Hashing the ~90 source files costs a few milliseconds, once per process.
    """
    global _code_digest_cache
    if _code_digest_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_digest_cache = digest.hexdigest()
    return _code_digest_cache


def compile_key(source: str, config: CompilerConfig) -> str:
    """Content address of one compile artifact.

    Hashes the workload's C source, every knob of *config*, the ``repro``
    package's own source tree, and the cache schema version.  Any change to
    any of them yields a fresh key.
    """
    digest = hashlib.sha256()
    digest.update(f"schema:{CACHE_SCHEMA_VERSION}\n".encode("utf-8"))
    digest.update(f"code:{code_digest()}\n".encode("utf-8"))
    digest.update(f"config:{config.content_hash()}\n".encode("utf-8"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def derived_key(parent_key: str, kind: str, params: Dict[str, Any]) -> str:
    """Content address of a derived (re-simulated) artifact.

    *parent_key* is the compile key of the artifact being re-simulated, *kind*
    names the sweep (``"runtime"`` or ``"split"``) and *params* are its
    JSON-serialisable parameters.
    """
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(f"derived:{parent_key}:{kind}\n".encode("utf-8"))
    digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


class ArtifactCache:
    """On-disk store addressed by the key functions above.

    Entries live at ``<root>/objects/<key[:2]>/<key>{.pkl,.json}`` (git-style
    fan-out so a directory never accumulates thousands of files).  The cache
    is safe to share between concurrent processes for *writes* (atomic
    rename); reads of a key only ever see a complete entry or a miss.
    :meth:`get_or_compute` layers per-key advisory locks on top so concurrent
    missers coordinate: one process computes, the others wait and reuse.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- paths ---------------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def locks_dir(self) -> Path:
        return self.root / "locks"

    def _path(self, key: str, serializer: str = "pickle") -> Path:
        return self.objects_dir / key[:2] / f"{key}{_EXTENSIONS[serializer]}"

    def _entry_paths(self) -> List[Path]:
        """Every stored entry, in a stable order (JSON and pickle alike)."""
        if not self.objects_dir.is_dir():
            return []
        return sorted(
            p for p in self.objects_dir.rglob("*") if p.suffix in (".pkl", ".json")
        )

    # -- store ---------------------------------------------------------------------

    def contains(self, key: str) -> bool:
        return any(self._path(key, fmt).is_file() for fmt in SERIALIZERS)

    def get(self, key: str) -> Optional[Any]:
        """Load the entry for *key*, or ``None`` on a miss.

        Tries the JSON form first (derived artifacts), then the pickle form
        (compile artifacts).  A corrupt or unreadable entry (e.g. written by
        an incompatible Python) is treated as a miss and deleted so the
        caller recomputes it.  A hit refreshes the entry's mtime, which is
        the recency clock :meth:`prune` evicts by.
        """
        for serializer in ("json", "pickle"):
            path = self._path(key, serializer)
            try:
                if serializer == "json":
                    with open(path, "r", encoding="utf-8") as fh:
                        value = json.load(fh)
                else:
                    with open(path, "rb") as fh:
                        value = pickle.load(fh)
            except FileNotFoundError:
                continue
            except Exception:
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            try:  # LRU bookkeeping only; never worth failing a hit over.
                os.utime(path)
            except OSError:
                pass
            return value
        return None

    def put(self, key: str, value: Any, serializer: str = "pickle") -> Path:
        """Atomically store *value* under *key* and return its path."""
        if serializer not in SERIALIZERS:
            raise ValueError(f"unknown serializer '{serializer}' (expected one of {SERIALIZERS})")
        if value is None:
            # None is get()'s miss signal; storing it would make the entry
            # look permanently missing and silently recompute on every read.
            raise ValueError("refusing to cache None (indistinguishable from a miss)")
        path = self._path(key, serializer)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            if serializer == "json":
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(value, fh, sort_keys=True, separators=(",", ":"))
            else:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # Drop a twin in the other format (e.g. a pre-JSON pickle of the same
        # derived key) so one key never has two competing entries.
        for other in SERIALIZERS:
            if other != serializer:
                try:
                    self._path(key, other).unlink()
                except OSError:
                    pass
        return path

    # -- single-flight -------------------------------------------------------------

    @contextlib.contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Advisory per-key exclusive lock (``flock``) shared across processes.

        Purely an anti-duplication measure: correctness never depends on it
        (writes are atomic), so on platforms without ``fcntl`` it degrades to
        a no-op and concurrent missers merely duplicate work.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.locks_dir / key[:2] / f"{key}.lock"
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        with open(lock_path, "a") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], serializer: str = "pickle"
    ) -> Any:
        """Return the entry for *key*, computing and storing it on a miss.

        Single-flight across processes: a miss takes the per-key lock before
        computing, so a concurrent process missing on the same key blocks on
        the lock, re-checks, and reuses the freshly stored entry instead of
        recomputing it.
        """
        hit = self.get(key)
        if hit is not None:
            return hit
        with self.lock(key):
            hit = self.get(key)  # someone else may have computed it meanwhile
            if hit is not None:
                return hit
            value = compute()
            self.put(key, value, serializer=serializer)
            return value

    # -- maintenance ---------------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also sweeps ``*.tmp`` files orphaned by writers killed mid-`put` and
        the per-key lock files (neither is counted as an entry).
        """
        removed = 0
        for entry in self._entry_paths():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        if self.objects_dir.is_dir():
            for orphan in sorted(self.objects_dir.rglob("*.tmp")):
                try:
                    orphan.unlink()
                except OSError:
                    pass
        if self.locks_dir.is_dir():
            for lock_file in sorted(self.locks_dir.rglob("*.lock")):
                try:
                    lock_file.unlink()
                except OSError:
                    pass
        return removed

    def prune(self, max_bytes: int) -> Dict[str, Any]:
        """Evict least-recently-used entries until the cache fits *max_bytes*.

        Recency is the entry mtime, which :meth:`get` refreshes on every hit
        and :meth:`put` sets on write, so eviction order is true LRU.  Stale
        orphaned temp files are swept first (they count against the budget in
        :meth:`stats`), and each evicted entry takes its lock file with it.
        Returns a summary dict (entries/bytes removed and remaining).
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        removed = 0
        freed = 0
        # Orphaned temp files (writers killed mid-put) count against the
        # budget in stats(), so sweep the stale ones first or the cache could
        # exceed the bound forever; recent ones may be in-flight writes and
        # are left for the next prune.
        if self.objects_dir.is_dir():
            stale_before = time.time() - ORPHAN_TMP_MAX_AGE_SECONDS
            for orphan in sorted(self.objects_dir.rglob("*.tmp")):
                try:
                    stat = orphan.stat()
                    if stat.st_mtime < stale_before:
                        orphan.unlink()
                        freed += stat.st_size
                except OSError:
                    pass
        entries: List[Tuple[float, int, Path]] = []
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        for _, size, path in sorted(entries, key=lambda item: (item[0], str(item[2]))):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
            # Sweep the evicted key's lock file too, or a long-lived LRU-bounded
            # cache would still grow one permanent empty file per key ever seen.
            key = path.stem
            try:
                (self.locks_dir / key[:2] / f"{key}.lock").unlink()
            except OSError:
                pass
        return {
            "root": str(self.root),
            "max_bytes": max_bytes,
            "removed_entries": removed,
            "freed_bytes": freed,
            "remaining_entries": len(entries) - removed,
            "remaining_bytes": total,
        }

    def stats(self) -> Dict[str, Any]:
        """Entry count and total size (orphaned temp files included), for
        ``repro cache stats``."""
        entries = self._entry_paths()
        orphans: List[Path] = []
        if self.objects_dir.is_dir():
            orphans = list(self.objects_dir.rglob("*.tmp"))
        total = 0
        for entry in entries + orphans:
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "entries": len(entries),
            "orphaned_tmp": len(orphans),
            "total_bytes": total,
            "schema_version": CACHE_SCHEMA_VERSION,
        }
