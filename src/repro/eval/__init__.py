"""Evaluation harness: regenerates every table and figure of thesis Chapter 6.

Experiments are declared as :mod:`repro.eval.taskgraph` DAGs — compile
nodes, one node per (workload, sweep-point), and aggregate nodes — executed
serially or over a shared process pool (``parallel=N``) with byte-identical
results, and memoised on disk through :mod:`repro.eval.cache` with
single-flight per-key locks; ``repro.cli`` exposes the same generators (and
``repro graph``) on the command line.
"""

from repro.eval.cache import ArtifactCache
from repro.eval.harness import EvaluationHarness, BenchmarkRun
from repro.eval.taskgraph import Task, TaskGraph, TaskScheduler
from repro.eval.experiments import (
    table_6_1,
    table_6_2,
    figure_6_1,
    figure_6_2,
    figure_6_3,
    figure_6_4,
    figure_6_5,
    figure_6_6,
    split_sweep,
    summary,
    declare_report,
    run_report,
)

__all__ = [
    "ArtifactCache",
    "EvaluationHarness",
    "BenchmarkRun",
    "Task",
    "TaskGraph",
    "TaskScheduler",
    "table_6_1",
    "table_6_2",
    "figure_6_1",
    "figure_6_2",
    "figure_6_3",
    "figure_6_4",
    "figure_6_5",
    "figure_6_6",
    "split_sweep",
    "summary",
    "declare_report",
    "run_report",
]
