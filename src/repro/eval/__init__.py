"""Evaluation harness: regenerates every table and figure of thesis Chapter 6.

Experiments are declared as :mod:`repro.eval.taskgraph` DAGs — compile
nodes, one node per (workload, sweep-point), and aggregate nodes — executed
serially, over a shared process pool (``parallel=N``), or across remote
worker daemons (:mod:`repro.eval.remote`, ``repro report --workers``) with
byte-identical results, and memoised through :mod:`repro.eval.cache` —
a local directory or a shared ``repro cache serve`` service — with
single-flight per-key locks; ``repro.cli`` exposes the same generators (and
``repro graph``) on the command line.
"""

from repro.eval.cache import ArtifactCache, CacheBackend, LocalFSBackend
from repro.eval.harness import EvaluationHarness, BenchmarkRun
from repro.eval.taskgraph import (
    LocalProcessExecutor,
    Task,
    TaskExecutor,
    TaskGraph,
    TaskOutcome,
    TaskScheduler,
)
from repro.eval.trace import TraceRecorder
from repro.eval.experiments import (
    table_6_1,
    table_6_2,
    figure_6_1,
    figure_6_2,
    figure_6_3,
    figure_6_4,
    figure_6_5,
    figure_6_6,
    split_sweep,
    summary,
    declare_report,
    run_report,
)

__all__ = [
    "ArtifactCache",
    "CacheBackend",
    "LocalFSBackend",
    "EvaluationHarness",
    "BenchmarkRun",
    "Task",
    "TaskExecutor",
    "TaskOutcome",
    "TaskGraph",
    "TaskScheduler",
    "LocalProcessExecutor",
    "TraceRecorder",
    "table_6_1",
    "table_6_2",
    "figure_6_1",
    "figure_6_2",
    "figure_6_3",
    "figure_6_4",
    "figure_6_5",
    "figure_6_6",
    "split_sweep",
    "summary",
    "declare_report",
    "run_report",
]
