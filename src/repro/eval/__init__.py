"""Evaluation harness: regenerates every table and figure of thesis Chapter 6.

The harness compiles workloads in parallel (``run_all(parallel=N)``) and
caches artefacts on disk (:mod:`repro.eval.cache`) so repeat runs of any
experiment are near-instant; ``repro.cli`` exposes the same generators on
the command line.
"""

from repro.eval.cache import ArtifactCache
from repro.eval.harness import EvaluationHarness, BenchmarkRun
from repro.eval.experiments import (
    table_6_1,
    table_6_2,
    figure_6_1,
    figure_6_2,
    figure_6_3,
    figure_6_4,
    figure_6_5,
    figure_6_6,
    split_sweep,
    summary,
)

__all__ = [
    "ArtifactCache",
    "EvaluationHarness",
    "BenchmarkRun",
    "table_6_1",
    "table_6_2",
    "figure_6_1",
    "figure_6_2",
    "figure_6_3",
    "figure_6_4",
    "figure_6_5",
    "figure_6_6",
    "split_sweep",
    "summary",
]
