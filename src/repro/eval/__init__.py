"""Evaluation harness: regenerates every table and figure of thesis Chapter 6."""

from repro.eval.harness import EvaluationHarness, BenchmarkRun
from repro.eval.experiments import (
    table_6_1,
    table_6_2,
    figure_6_1,
    figure_6_2,
    figure_6_3,
    figure_6_4,
    figure_6_5,
    figure_6_6,
    summary,
)

__all__ = [
    "EvaluationHarness",
    "BenchmarkRun",
    "table_6_1",
    "table_6_2",
    "figure_6_1",
    "figure_6_2",
    "figure_6_3",
    "figure_6_4",
    "figure_6_5",
    "figure_6_6",
    "summary",
]
