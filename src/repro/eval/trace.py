"""Execution tracing for the task-graph scheduler (chrome://tracing JSON).

``repro report --trace trace.json`` records one complete event per executed
task — start/stop wall time plus the lane that ran it (the parent, a
``pid:<n>`` pool worker, or a named remote worker) — and writes the Chrome
Trace Event Format document that ``chrome://tracing`` / Perfetto render as a
per-worker utilisation timeline.  Cache hits and seeded tasks run nothing
and therefore produce no event; gaps in a lane are genuine idle time.

The recorder is deliberately tiny and thread-safe (remote completions arrive
on HTTP handler threads): :class:`TraceRecorder.record` appends one event,
:meth:`TraceRecorder.write` emits the JSON file.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class TraceRecorder:
    """Collects per-task execution spans and renders chrome://tracing JSON.

    Workers are mapped to integer ``tid`` lanes in first-seen order (the
    format requires integers); a ``thread_name`` metadata event labels each
    lane with the worker's name so the viewer shows readable rows.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._lanes: Dict[str, int] = {}
        self._spans: List[Dict[str, Any]] = []

    def _lane(self, worker: str) -> int:
        lane = self._lanes.get(worker)
        if lane is None:
            lane = len(self._lanes)
            self._lanes[worker] = lane
        return lane

    def record(
        self,
        name: str,
        category: str,
        worker: str,
        start: float,
        end: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Add one complete ("X") event; times are ``time.time()`` seconds."""
        with self._lock:
            self._spans.append(
                {"name": name, "kind": category, "worker": worker, "start": start, "end": end}
            )
            self._events.append(
                {
                    "name": name,
                    "cat": category,
                    "ph": "X",
                    "pid": 1,
                    "tid": self._lane(worker),
                    "ts": int(start * 1_000_000),
                    "dur": max(0, int((end - start) * 1_000_000)),
                    "args": args or {},
                }
            )

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The recorded complete events (no metadata), oldest first."""
        with self._lock:
            return list(self._events)

    @property
    def spans(self) -> List[Dict[str, Any]]:
        """The raw recorded spans (name/kind/worker/start/end), oldest first.

        What the HTML report's embedded timeline chart is built from —
        sorted deterministically by (start, worker, name) since completion
        callbacks may arrive on several threads.
        """
        with self._lock:
            return sorted(self._spans, key=lambda s: (s["start"], s["worker"], s["name"]))

    def to_chrome(self) -> Dict[str, Any]:
        """The full trace document: metadata + events sorted by start time."""
        with self._lock:
            metadata: List[Dict[str, Any]] = [
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": 0,
                    "args": {"name": "repro task graph"},
                }
            ]
            for worker, lane in self._lanes.items():
                metadata.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": lane,
                        "args": {"name": worker},
                    }
                )
            events = sorted(self._events, key=lambda e: (e["ts"], e["tid"]))
        return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}

    def write(self, path: Union[str, Path]) -> Path:
        """Write the chrome://tracing JSON document to *path*."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=1), encoding="utf-8")
        return path
