"""Task-graph execution engine for the evaluation stack.

Every thesis artefact is a small DAG over four node kinds:

* **compile** — the full pipeline for one workload (front end → passes →
  functional trace → DSWP → HLS → three timing replays), producing a
  :class:`repro.core.compiler.CompilationResult`;
* **sweep points** (``runtime`` / ``split``) — cheap re-simulations of an
  existing compile artifact under one swept parameter (queue latency, queue
  depth, targeted partition split), one node per (workload, sweep-point);
* **explore points** (``explore``) — design-space-exploration candidate
  evaluations (:mod:`repro.explore`): a full configuration candidate
  re-partitioned and re-simulated from the baseline compile artifact,
  keyed by the candidate's canonical parameters;
* **render** — one figure's SVG markup (``repro.viz``), keyed by the content
  addresses of the artefacts it draws, so warm reports re-render nothing and
  cold figures fan out like any other derived artefact;
* **aggregate** — parent-side row/table construction from the values of its
  dependencies (a table, a figure, the §6.7 summary).

``repro.eval.experiments`` *declares* these graphs instead of looping
inline; :class:`TaskScheduler` then executes ready tasks — serially, or over
a shared :class:`~concurrent.futures.ProcessPoolExecutor` — while honouring
dependencies.  Worker tasks never ship artefacts over the pipe: dependency
edges only guarantee that a task's inputs are present in the shared
content-addressed :class:`repro.eval.cache.ArtifactCache` before it starts,
and the scheduler memoises every keyed task through that cache with per-key
advisory locks, so concurrent missers (across worker processes *and* across
independent ``repro`` invocations) compute each key exactly once.

Because node values are pure functions of their content address, a parallel
run produces byte-identical rows and tables to a serial run — the
scheduler's only freedom is *when* a value gets computed, never *what* it
is.  ``repro graph`` prints these DAGs without executing them.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.config import CompilerConfig, RuntimeConfig
from repro.core.compiler import CompilationResult, TwillCompiler
from repro.errors import TaskGraphCycleError, TaskGraphError
from repro.eval.cache import (
    ArtifactCache,
    compile_key,
    derived_key,
    render_key,
    set_process_hmac_key,
)
from repro.eval.trace import TraceRecorder
from repro.obs import profile as obs_profile
from repro.obs import tracing as obs_tracing
from repro.sim.system import resimulate_with_split
from repro.sim.timing import simulate_partitioned
from repro.workloads import get_workload

#: Node kinds, also used by ``repro graph`` for display and by the harness
#: to route results back into its in-memory memo layers.
KIND_COMPILE = "compile"
KIND_RUNTIME = "runtime"
KIND_SPLIT = "split"
KIND_EXPLORE = "explore"
KIND_INGEST = "ingest"
KIND_RENDER = "render"
KIND_AGGREGATE = "aggregate"

#: Kinds whose payload is picklable and may run in a worker process.
WORKER_KINDS = (KIND_COMPILE, KIND_RUNTIME, KIND_SPLIT, KIND_EXPLORE, KIND_INGEST, KIND_RENDER)

#: Kinds whose value is a derived (JSON) artifact of a compile node — the
#: harness memoises them in its in-memory derived layer after a run.
DERIVED_KINDS = (KIND_RUNTIME, KIND_SPLIT, KIND_EXPLORE, KIND_INGEST, KIND_RENDER)


@dataclass(frozen=True)
class Task:
    """One node of an evaluation task graph.

    Worker tasks (``kind`` in :data:`WORKER_KINDS`) carry a module-level
    ``fn`` called as ``fn(*args)`` — fully self-describing and picklable, so
    the scheduler may run it in any process.  Aggregate tasks run in the
    parent and are called as ``fn(results, *args)`` with the mapping of every
    finished task's value.  ``key`` is the content address under which the
    scheduler memoises the output (``None`` = never disk-cached).
    """

    task_id: str
    kind: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    deps: Tuple[str, ...] = ()
    key: Optional[str] = None
    serializer: str = "pickle"
    workload: Optional[str] = None

    def runs_in_worker(self) -> bool:
        return self.kind in WORKER_KINDS


class TaskGraph:
    """An insertion-ordered DAG of :class:`Task` nodes.

    Adding a node whose ``task_id`` already exists is a no-op returning the
    existing id (so several artefact declarations can share one compile
    node), but re-declaring an id with a *different* content key is an error
    — the same name must always mean the same computation.
    """

    def __init__(self) -> None:
        self._tasks: "OrderedDict[str, Task]" = OrderedDict()

    def add(self, task: Task) -> str:
        existing = self._tasks.get(task.task_id)
        if existing is not None:
            if existing.key != task.key:
                raise TaskGraphError(
                    f"task '{task.task_id}' re-declared with a different content key"
                )
            if existing.key is None and (existing.fn is not task.fn or existing.args != task.args):
                # Key-less (aggregate) nodes have no content address to
                # compare, so conflicting re-declarations must be caught on
                # the computation itself or the second one is silently lost.
                raise TaskGraphError(
                    f"task '{task.task_id}' re-declared with a different computation"
                )
            return existing.task_id
        self._tasks[task.task_id] = task
        return task.task_id

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskGraphError(f"unknown task '{task_id}'") from None

    def tasks(self) -> List[Task]:
        """All nodes in insertion (declaration) order."""
        return list(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def edge_count(self) -> int:
        return sum(len(t.deps) for t in self._tasks.values())

    def validate(self) -> None:
        """Reject dangling dependency references."""
        for task in self._tasks.values():
            for dep in task.deps:
                if dep not in self._tasks:
                    raise TaskGraphError(
                        f"task '{task.task_id}' depends on unknown task '{dep}'"
                    )

    def topological_order(self) -> List[Task]:
        """Kahn's algorithm, stable w.r.t. declaration order.

        Raises :class:`TaskGraphCycleError` (naming the nodes involved) when
        the graph has no topological order.
        """
        self.validate()
        waiting = {t.task_id: len(t.deps) for t in self._tasks.values()}
        dependents: Dict[str, List[str]] = {t.task_id: [] for t in self._tasks.values()}
        for task in self._tasks.values():
            for dep in task.deps:
                dependents[dep].append(task.task_id)
        ready = deque(tid for tid, count in waiting.items() if count == 0)
        order: List[Task] = []
        while ready:
            task_id = ready.popleft()
            order.append(self._tasks[task_id])
            for dependent in dependents[task_id]:
                waiting[dependent] -= 1
                if waiting[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._tasks):
            stuck = sorted(tid for tid, count in waiting.items() if count > 0)
            raise TaskGraphCycleError(
                "task graph contains a dependency cycle involving: " + ", ".join(stuck)
            )
        return order


# ---------------------------------------------------------------------------
# picklable task payloads
# ---------------------------------------------------------------------------


def _compile_serializer(config: CompilerConfig) -> str:
    """Storage format for compile artifacts: the structured non-pickle codec,
    except for configurations whose results it cannot express (materialised
    thread extractions hold extracted sub-functions outside the module)."""
    return "pickle" if config.extract_threads else "artifact"


def compute_compile(name: str, config: CompilerConfig) -> CompilationResult:
    """Pure compile payload: run the whole pipeline for one workload."""
    workload = get_workload(name)
    return TwillCompiler(config).compile_and_simulate(workload.source, name=name)


# Per-process memo of compile artifacts consumed by sweep-point payloads, so
# a worker that executes many sweep points for one workload unpickles (or
# recompiles, when caching is off) that workload's artifact only once.  Keyed
# by content address, so a stale value is impossible by construction; bounded
# so long test sessions cannot accumulate every artifact they ever touched.
_SWEEP_INPUT_MEMO: "OrderedDict[str, CompilationResult]" = OrderedDict()
_SWEEP_INPUT_MEMO_LIMIT = 16


def seed_sweep_input(key: str, result: CompilationResult) -> None:
    """Pre-populate the sweep-input memo (the parent already holds the
    artifact in memory, so in-parent sweep points skip the disk round trip)."""
    _SWEEP_INPUT_MEMO[key] = result
    _SWEEP_INPUT_MEMO.move_to_end(key)
    while len(_SWEEP_INPUT_MEMO) > _SWEEP_INPUT_MEMO_LIMIT:
        _SWEEP_INPUT_MEMO.popitem(last=False)


def _sweep_input(name: str, config: CompilerConfig, cache_root: Optional[str]) -> CompilationResult:
    """The compile artifact a sweep point re-simulates: memo → cache → compute.

    *cache_root* is a cache *spec* — a directory path or an ``http(s)://``
    cache-service URL — so the same payload runs unchanged in the parent, in
    a pool worker, and on a remote worker machine.
    """
    key = compile_key(get_workload(name).source, config)
    hit = _SWEEP_INPUT_MEMO.get(key)
    if hit is not None:
        _SWEEP_INPUT_MEMO.move_to_end(key)
        return hit
    if cache_root is not None:
        result = ArtifactCache.from_spec(cache_root).get_or_compute(
            key, lambda: compute_compile(name, config), serializer=_compile_serializer(config)
        )
    else:
        result = compute_compile(name, config)
    seed_sweep_input(key, result)
    return result


def compute_runtime_point(
    name: str, config: CompilerConfig, cache_root: Optional[str], runtime: RuntimeConfig
) -> float:
    """One Figure 6.5/6.6 sweep point: Twill cycles under a modified runtime."""
    result = _sweep_input(name, config, cache_root)
    timing = simulate_partitioned(
        result.module, result.execution.trace, result.dswp.partitioning, runtime, config.hls
    )
    return timing.total_cycles


def compute_split_point(
    name: str, config: CompilerConfig, cache_root: Optional[str], sw_fraction: float
) -> Dict[str, float]:
    """One Figure 6.3/6.4 sweep point: re-partition at *sw_fraction*."""
    result = _sweep_input(name, config, cache_root)
    dswp, system = resimulate_with_split(
        result.name,
        result.module,
        result.execution.trace,
        result.profile,
        result.legup,
        config,
        sw_fraction,
    )
    return {
        "cycles": system.twill.cycles,
        "queues": float(dswp.partitioning.total_queues),
        "speedup_vs_sw": system.speedup_vs_software,
    }


def _execute_in_worker(
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    key: Optional[str],
    cache_spec: Optional[str],
    serializer: str,
    hmac_key: Optional[str] = None,
    trace_ctx: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Pool-worker entry: run one task payload through the shared cache.

    ``get_or_compute`` gives single-flight semantics per key, so two workers
    (or two independent ``repro`` processes) racing on the same content
    address do the work once and share the stored entry.  Returns a small
    envelope dict: pickled artifacts come back with ``in_cache=True`` (the
    parent re-reads them from the cache instead of paying a second
    multi-megabyte pipe serialisation) while small JSON values ride in
    ``value`` directly; ``pid``/``start``/``end`` feed the ``--trace``
    timeline.

    *trace_ctx* carries the parent's span context (plus task id/kind) across
    the process boundary: thread-local trace state does not survive a fork,
    so when ``$REPRO_TRACE`` is active in this child the task span recorded
    here is re-parented under the scheduler's span explicitly.
    """
    start = time.time()
    if hmac_key is not None:
        set_process_hmac_key(hmac_key)
    # Pool children inherit $REPRO_PROFILE: start this child's sampler on
    # its first task (idempotent, one dict lookup afterwards) and count the
    # execution exactly — the deterministic complement to the samples.
    obs_profile.maybe_start(service="pool")
    ctx = trace_ctx or {}
    obs_profile.count(f"task.{ctx.get('kind', 'task')}")
    with obs_tracing.activate(ctx.get("trace_id"), ctx.get("parent_id")):
        with obs_tracing.span(
            f"task:{ctx.get('task_id', getattr(fn, '__name__', 'task'))}",
            kind=str(ctx.get("kind", "task")),
            worker=f"pid:{os.getpid()}",
        ):
            in_cache = False
            if key is not None and cache_spec is not None:
                cache = ArtifactCache.from_spec(cache_spec)
                value = cache.get_or_compute(key, lambda: fn(*args), serializer=serializer)
                if serializer in ("pickle", "artifact"):
                    value, in_cache = None, True
            else:
                value = fn(*args)
    return {
        "value": value,
        "in_cache": in_cache,
        "pid": os.getpid(),
        "start": start,
        "end": time.time(),
    }


# ---------------------------------------------------------------------------
# node constructors (used by EvaluationHarness.declare_*)
# ---------------------------------------------------------------------------


def compile_task(name: str, config: CompilerConfig) -> Task:
    """The compile node for one workload (id ``compile:<name>``)."""
    return Task(
        task_id=f"compile:{name}",
        kind=KIND_COMPILE,
        fn=compute_compile,
        args=(name, config),
        key=compile_key(get_workload(name).source, config),
        serializer=_compile_serializer(config),
        workload=name,
    )


def runtime_task(
    name: str,
    config: CompilerConfig,
    cache_root: Optional[str],
    runtime: RuntimeConfig,
    label: str,
) -> Task:
    """One queue-latency/depth sweep-point node depending on its compile node."""
    parent = compile_key(get_workload(name).source, config)
    return Task(
        task_id=f"sweep:{label}",
        kind=KIND_RUNTIME,
        fn=compute_runtime_point,
        args=(name, config, cache_root, runtime),
        deps=(f"compile:{name}",),
        key=derived_key(parent, "runtime", runtime.to_dict()),
        serializer="json",
        workload=name,
    )


def split_task(
    name: str, config: CompilerConfig, cache_root: Optional[str], sw_fraction: float
) -> Task:
    """One partition-split sweep-point node depending on its compile node."""
    parent = compile_key(get_workload(name).source, config)
    return Task(
        task_id=f"sweep:split:{name}:{sw_fraction}",
        kind=KIND_SPLIT,
        fn=compute_split_point,
        args=(name, config, cache_root, sw_fraction),
        deps=(f"compile:{name}",),
        key=derived_key(parent, "split", {"sw_fraction": sw_fraction}),
        serializer="json",
        workload=name,
    )


def aggregate_task(
    task_id: str,
    fn: Callable[..., Any],
    deps: Sequence[str],
    args: Tuple[Any, ...] = (),
) -> Task:
    """A parent-side aggregation node (rows/tables from dependency values)."""
    return Task(
        task_id=task_id,
        kind=KIND_AGGREGATE,
        fn=fn,
        args=args,
        deps=tuple(deps),
        key=None,
    )


def render_task(
    figure_id: str,
    fn: Callable[..., Any],
    deps: Sequence[str],
    dep_keys: Sequence[str],
    agg_arg: Any,
    cache_root: Optional[str],
) -> Task:
    """One figure-render node (id ``render:<figure_id>``).

    A render is a worker task like any sweep point: *fn* (a registered
    payload such as ``experiments.compute_figure_render``) rebuilds the
    figure's input mapping from the shared cache using the dependency task
    ids and content keys, aggregates it and returns the SVG markup.  The
    node is keyed by :func:`repro.eval.cache.render_key` over the dependency
    keys, so a warm run re-renders nothing and figures fan out across the
    pool (or remote workers) on cold runs.  When the scheduler runs a render
    *inline* it passes the in-memory dependency values instead (see
    :meth:`TaskScheduler._run_task_inline`), so ``--no-cache`` runs render
    without re-reading anything.
    """
    return Task(
        task_id=f"render:{figure_id}",
        kind=KIND_RENDER,
        fn=fn,
        args=(figure_id, tuple(deps), tuple(dep_keys), agg_arg, cache_root),
        deps=tuple(deps),
        key=render_key(figure_id, list(dep_keys)),
        serializer="json",
    )


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


@dataclass
class TaskOutcome:
    """One finished worker task as reported by an executor.

    ``in_cache=True`` means the worker published the (pickled) value through
    the shared cache instead of shipping it back; the scheduler re-reads it.
    ``worker``/``start``/``end`` feed the ``--trace`` utilisation timeline.
    """

    task: Task
    value: Any = None
    in_cache: bool = False
    worker: str = "pool"
    start: float = 0.0
    end: float = 0.0


class TaskExecutor:
    """Where worker tasks run: the pluggable seam under :class:`TaskScheduler`.

    The scheduler owns graph order, seeds, cache pre-checks and aggregate
    nodes; an executor only has to run keyed worker payloads somewhere else
    and report :class:`TaskOutcome`\\ s back.  Two implementations exist:
    :class:`LocalProcessExecutor` (a process pool on this machine — the
    historical ``--parallel`` behaviour) and
    :class:`repro.eval.remote.executor.RemoteExecutor` (an embedded
    coordinator that ``repro worker serve`` daemons long-poll).
    """

    def can_execute(self, task: Task) -> bool:
        """Whether this executor can run *task* (else the parent runs it inline)."""
        return True

    def submit(self, task: Task, cache: Optional[ArtifactCache]) -> None:
        """Hand one ready worker task to the execution substrate."""
        raise NotImplementedError

    def wait(self) -> List[TaskOutcome]:
        """Block until at least one submitted task finishes; return outcomes.

        A task that failed definitively should raise here (the scheduler
        treats executor errors as fatal for the run).
        """
        raise NotImplementedError

    def close(self, interrupt: bool = False) -> None:
        """Release resources; with ``interrupt=True``, abandon in-flight work
        (terminate pool processes / revoke worker leases).  Idempotent."""
        raise NotImplementedError


class LocalProcessExecutor(TaskExecutor):
    """The historical behaviour: fan worker tasks over a local process pool.

    Workers exchange artefacts through the shared cache rather than over the
    pipe (see :func:`_execute_in_worker`); the pool is created lazily on the
    first submit so cache-warm runs never fork at all.
    """

    def __init__(self, jobs: int):
        # Honour the requested degree rather than capping at os.cpu_count():
        # in cgroup-limited containers the reported count is often wrong, and
        # an explicit --parallel N is an informed opt-in.
        self.max_workers = max(1, min(jobs, 32))
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[Any, Task] = {}

    def submit(self, task: Task, cache: Optional[ArtifactCache]) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        trace_ctx = obs_tracing.wire_context()
        if trace_ctx is not None:
            trace_ctx = {**trace_ctx, "task_id": task.task_id, "kind": task.kind}
        future = self._pool.submit(
            _execute_in_worker,
            task.fn,
            task.args,
            task.key,
            cache.spec if cache is not None else None,
            task.serializer,
            cache.hmac_key if cache is not None else None,
            trace_ctx,
        )
        self._futures[future] = task

    def wait(self) -> List[TaskOutcome]:
        finished, _ = wait(list(self._futures), return_when=FIRST_COMPLETED)
        outcomes: List[TaskOutcome] = []
        for future in finished:
            task = self._futures.pop(future)
            envelope = future.result()  # re-raises worker exceptions
            outcomes.append(
                TaskOutcome(
                    task=task,
                    value=envelope["value"],
                    in_cache=envelope["in_cache"],
                    worker=f"pid:{envelope['pid']}",
                    start=envelope["start"],
                    end=envelope["end"],
                )
            )
        return outcomes

    def close(self, interrupt: bool = False) -> None:
        pool, self._pool = self._pool, None
        self._futures.clear()
        if pool is None:
            return
        if interrupt:
            # Abandon queued work and put the worker processes down now: a
            # Ctrl-C should not wait out a multi-second compile.  _processes
            # is a private detail, so degrade to a plain shutdown without it.
            pool.shutdown(wait=False, cancel_futures=True)
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        else:
            pool.shutdown()


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


class TaskScheduler:
    """Executes a :class:`TaskGraph`, honouring dependencies.

    * ``jobs <= 1`` (or ``None``) and no *executor*: every task runs in the
      parent, in topological (declaration-stable) order.
    * ``jobs > 1``: ready worker tasks are fanned out over a
      :class:`LocalProcessExecutor`; aggregates always run in the parent as
      soon as their dependencies finish.  Workers exchange artefacts through
      *cache* rather than over the pipe; without a cache only
      dependency-free tasks (compiles) are pooled and dependent sweep points
      run in the parent.
    * an explicit *executor* (e.g. :class:`~repro.eval.remote.executor.
      RemoteExecutor`) replaces the pool entirely; tasks the executor cannot
      run (``can_execute`` false) fall back to the parent.

    Keyed tasks are memoised through *cache* (parent-side pre-check, then
    worker-side ``get_or_compute`` under the per-key lock).  *seeds* maps
    task ids to already-known values (the harness's in-memory layer), which
    count as completed without running anything.  *trace* is an optional
    :class:`repro.eval.trace.TraceRecorder` collecting per-task spans.

    A :class:`KeyboardInterrupt` shuts down gracefully: the executor is
    closed in interrupt mode (pool processes terminated, worker leases
    revoked) and the per-key lock files of in-flight tasks are removed, so
    an aborted run leaves no stale single-flight state behind.
    """

    def __init__(
        self,
        graph: TaskGraph,
        cache: Optional[ArtifactCache] = None,
        jobs: Optional[int] = None,
        seeds: Optional[Mapping[str, Any]] = None,
        executor: Optional[TaskExecutor] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        self.graph = graph
        self.cache = cache
        self.jobs = jobs
        self.seeds = dict(seeds or {})
        self.executor = executor
        self.trace = trace
        #: Execution statistics of the last :meth:`run` — how each task was
        #: satisfied.  Purely observational (the HTML report's "cache hit
        #: stats" and the warm-run re-render assertions read it); only
        #: order-independent counts, so serial and parallel runs agree.
        self.stats: Dict[str, Any] = {
            "total": len(graph),
            "seeded": 0,
            "cache_hits": 0,
            "executed": {},
            "cache_hit_kinds": {},
        }

    def _count_seeded(self, task: Task) -> None:
        self.stats["seeded"] += 1

    def _count_hit(self, task: Task) -> None:
        self.stats["cache_hits"] += 1
        kinds = self.stats["cache_hit_kinds"]
        kinds[task.kind] = kinds.get(task.kind, 0) + 1

    def _count_executed(self, task: Task) -> None:
        executed = self.stats["executed"]
        executed[task.kind] = executed.get(task.kind, 0) + 1

    # -- execution -----------------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Execute every task; returns ``{task_id: value}`` for the whole graph."""
        with obs_tracing.span("scheduler.run", kind="scheduler", tasks=len(self.graph)):
            return self._run()

    def _run(self) -> Dict[str, Any]:
        order = self.graph.topological_order()
        keyed = self.cache is not None and bool(self.cache.hmac_key)
        if keyed:
            # Sweep payloads running *inline* rebuild their cache from the
            # spec string (exactly as pool/remote workers do), so the parent
            # process must carry the envelope key the same way workers get
            # it via _execute_in_worker — otherwise an explicitly keyed run
            # would reject its own signed compile artifacts when the
            # in-memory sweep-input memo misses.  Restored afterwards so the
            # key stays scoped to this run, not the whole process.
            previous_key = set_process_hmac_key(self.cache.hmac_key)
        try:
            executor = self.executor
            if executor is None:
                jobs = self.jobs or 1
                if jobs <= 1:
                    return self._run_serial(order)
                executor = LocalProcessExecutor(jobs)
            return self._run_with_executor(order, executor)
        finally:
            if keyed:
                set_process_hmac_key(previous_key)

    def _cached_or_none(self, task: Task) -> Optional[Any]:
        if task.key is not None and self.cache is not None:
            return self.cache.get(task.key)
        return None

    def _run_task_inline(self, task: Task, results: Dict[str, Any]) -> Any:
        if not task.runs_in_worker():
            return task.fn(results, *task.args)
        kwargs: Dict[str, Any] = {}
        if task.kind == KIND_RENDER:
            # Inline renders aggregate straight from the in-memory dependency
            # values (all completed before this point) instead of re-reading
            # the shared cache — which also makes --no-cache runs renderable.
            kwargs["values"] = {dep: results[dep] for dep in task.deps}
        if task.key is not None and self.cache is not None:
            return self.cache.get_or_compute(
                task.key, lambda: task.fn(*task.args, **kwargs), serializer=task.serializer
            )
        return task.fn(*task.args, **kwargs)

    def _record(self, task: Task, value: Any, results: Dict[str, Any]) -> None:
        results[task.task_id] = value
        if task.kind == KIND_COMPILE and task.key is not None:
            # Sweep points of this workload (parent-side or freshly forked
            # workers) reuse the in-memory artifact instead of re-reading it.
            seed_sweep_input(task.key, value)

    def _trace_span(self, task: Task, worker: str, start: float, end: float) -> None:
        if self.trace is not None:
            self.trace.record(task.task_id, task.kind, worker, start, end)

    def _obs_mark(self, task: Task, **attrs: Any) -> None:
        """Record a zero-duration span for a node satisfied without running
        (seed / parent-side cache hit / parked twin), so a trace covers every
        scheduled node, not just the executed ones."""
        with obs_tracing.span(f"task:{task.task_id}", kind=task.kind, worker="parent", **attrs):
            pass

    def _sweep_locks(self, tasks: Sequence[Task]) -> None:
        """Interrupt cleanup: drop the per-key lock files of abandoned tasks."""
        if self.cache is None:
            return
        for task in tasks:
            if task.key is not None:
                self.cache.discard_lock_file(task.key)

    def _run_serial(self, order: List[Task]) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        for task in order:
            if task.task_id in self.seeds:
                self._count_seeded(task)
                self._obs_mark(task, seeded=True)
                self._record(task, self.seeds[task.task_id], results)
                continue
            hit = self._cached_or_none(task)
            if hit is not None:
                self._count_hit(task)
                self._obs_mark(task, cache_hit=True)
                self._record(task, hit, results)
                continue
            start = time.time()
            try:
                with obs_tracing.span(
                    f"task:{task.task_id}", kind=task.kind, worker="parent", cache_hit=False
                ):
                    value = self._run_task_inline(task, results)
            except KeyboardInterrupt:
                self._sweep_locks([task])
                raise
            self._count_executed(task)
            self._trace_span(task, "parent", start, time.time())
            self._record(task, value, results)
        return results

    def _run_with_executor(self, order: List[Task], executor: TaskExecutor) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        dependents: Dict[str, List[Task]] = {t.task_id: [] for t in order}
        for task in order:
            for dep in task.deps:
                dependents[dep].append(task)
        waiting: Dict[str, int] = {t.task_id: len(t.deps) for t in order}
        ready: deque = deque(t for t in order if not t.deps)
        in_flight: Dict[str, Task] = {}
        # Distinct task ids can share one content key (e.g. the latency-2 and
        # depth-8 sweep points are both the default runtime config).  Only
        # one such task is submitted; the twins park here and complete as
        # cache hits off the owner's value — exactly how the serial path
        # resolves them, so the run statistics stay scheduling-invariant.
        in_flight_keys: Dict[str, str] = {}
        parked: Dict[str, List[Task]] = {}

        def complete(task: Task, value: Any) -> None:
            self._record(task, value, results)
            for dependent in dependents[task.task_id]:
                waiting[dependent.task_id] -= 1
                if waiting[dependent.task_id] == 0:
                    ready.append(dependent)

        def complete_with_twins(task: Task, value: Any) -> None:
            complete(task, value)
            if task.key is not None:
                in_flight_keys.pop(task.key, None)
                for twin in parked.pop(task.key, ()):  # noqa: B905 - list default
                    self._count_hit(twin)
                    self._obs_mark(twin, cache_hit=True)
                    complete(twin, value)

        def run_inline(task: Task) -> None:
            start = time.time()
            with obs_tracing.span(
                f"task:{task.task_id}", kind=task.kind, worker="parent", cache_hit=False
            ):
                value = self._run_task_inline(task, results)
            self._count_executed(task)
            self._trace_span(task, "parent", start, time.time())
            complete(task, value)

        current: Optional[Task] = None
        try:
            try:
                while ready or in_flight:
                    while ready:
                        task = ready.popleft()
                        current = task
                        if task.task_id in self.seeds:
                            self._count_seeded(task)
                            self._obs_mark(task, seeded=True)
                            complete(task, self.seeds[task.task_id])
                            continue
                        if not task.runs_in_worker():
                            start = time.time()
                            with obs_tracing.span(
                                f"task:{task.task_id}", kind=task.kind, worker="parent"
                            ):
                                value = task.fn(results, *task.args)
                            self._count_executed(task)
                            self._trace_span(task, "parent", start, time.time())
                            complete(task, value)
                            continue
                        hit = self._cached_or_none(task)
                        if hit is not None:
                            self._count_hit(task)
                            self._obs_mark(task, cache_hit=True)
                            complete(task, hit)
                            continue
                        if (self.cache is None and task.deps) or not executor.can_execute(task):
                            # Without the shared cache a worker cannot see its
                            # dependencies' artefacts (and some executors only
                            # speak the registered payload protocol), so such
                            # tasks run in the parent off the in-memory memo;
                            # everything else fans out.
                            run_inline(task)
                            continue
                        if task.key is not None and task.key in in_flight_keys:
                            parked.setdefault(task.key, []).append(task)
                            continue
                        executor.submit(task, self.cache)
                        self._count_executed(task)
                        in_flight[task.task_id] = task
                        if task.key is not None:
                            in_flight_keys[task.key] = task.task_id
                    current = None
                    if in_flight:
                        for outcome in executor.wait():
                            task = outcome.task
                            in_flight.pop(task.task_id, None)
                            value = outcome.value
                            if outcome.in_cache:
                                value = self._cached_or_none(task)
                                if value is None:  # pruned/corrupted between write and read
                                    value = self._run_task_inline(task, results)
                            self._trace_span(task, outcome.worker, outcome.start, outcome.end)
                            complete_with_twins(task, value)
            except KeyboardInterrupt:
                executor.close(interrupt=True)
                abandoned = list(in_flight.values())
                if current is not None and current.task_id not in in_flight:
                    abandoned.append(current)
                self._sweep_locks(abandoned)
                raise
        finally:
            executor.close()
        return results
