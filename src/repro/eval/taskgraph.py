"""Task-graph execution engine for the evaluation stack.

Every thesis artefact is a small DAG over three node kinds:

* **compile** — the full pipeline for one workload (front end → passes →
  functional trace → DSWP → HLS → three timing replays), producing a
  :class:`repro.core.compiler.CompilationResult`;
* **sweep points** (``runtime`` / ``split``) — cheap re-simulations of an
  existing compile artifact under one swept parameter (queue latency, queue
  depth, targeted partition split), one node per (workload, sweep-point);
* **aggregate** — parent-side row/table construction from the values of its
  dependencies (a table, a figure, the §6.7 summary).

``repro.eval.experiments`` *declares* these graphs instead of looping
inline; :class:`TaskScheduler` then executes ready tasks — serially, or over
a shared :class:`~concurrent.futures.ProcessPoolExecutor` — while honouring
dependencies.  Worker tasks never ship artefacts over the pipe: dependency
edges only guarantee that a task's inputs are present in the shared
content-addressed :class:`repro.eval.cache.ArtifactCache` before it starts,
and the scheduler memoises every keyed task through that cache with per-key
advisory locks, so concurrent missers (across worker processes *and* across
independent ``repro`` invocations) compute each key exactly once.

Because node values are pure functions of their content address, a parallel
run produces byte-identical rows and tables to a serial run — the
scheduler's only freedom is *when* a value gets computed, never *what* it
is.  ``repro graph`` prints these DAGs without executing them.
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.config import CompilerConfig, RuntimeConfig
from repro.core.compiler import CompilationResult, TwillCompiler
from repro.errors import TaskGraphCycleError, TaskGraphError
from repro.eval.cache import ArtifactCache, compile_key, derived_key
from repro.sim.system import resimulate_with_split
from repro.sim.timing import simulate_partitioned
from repro.workloads import get_workload

#: Node kinds, also used by ``repro graph`` for display and by the harness
#: to route results back into its in-memory memo layers.
KIND_COMPILE = "compile"
KIND_RUNTIME = "runtime"
KIND_SPLIT = "split"
KIND_AGGREGATE = "aggregate"

#: Kinds whose payload is picklable and may run in a worker process.
WORKER_KINDS = (KIND_COMPILE, KIND_RUNTIME, KIND_SPLIT)


@dataclass(frozen=True)
class Task:
    """One node of an evaluation task graph.

    Worker tasks (``kind`` in :data:`WORKER_KINDS`) carry a module-level
    ``fn`` called as ``fn(*args)`` — fully self-describing and picklable, so
    the scheduler may run it in any process.  Aggregate tasks run in the
    parent and are called as ``fn(results, *args)`` with the mapping of every
    finished task's value.  ``key`` is the content address under which the
    scheduler memoises the output (``None`` = never disk-cached).
    """

    task_id: str
    kind: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    deps: Tuple[str, ...] = ()
    key: Optional[str] = None
    serializer: str = "pickle"
    workload: Optional[str] = None

    def runs_in_worker(self) -> bool:
        return self.kind in WORKER_KINDS


class TaskGraph:
    """An insertion-ordered DAG of :class:`Task` nodes.

    Adding a node whose ``task_id`` already exists is a no-op returning the
    existing id (so several artefact declarations can share one compile
    node), but re-declaring an id with a *different* content key is an error
    — the same name must always mean the same computation.
    """

    def __init__(self) -> None:
        self._tasks: "OrderedDict[str, Task]" = OrderedDict()

    def add(self, task: Task) -> str:
        existing = self._tasks.get(task.task_id)
        if existing is not None:
            if existing.key != task.key:
                raise TaskGraphError(
                    f"task '{task.task_id}' re-declared with a different content key"
                )
            if existing.key is None and (existing.fn is not task.fn or existing.args != task.args):
                # Key-less (aggregate) nodes have no content address to
                # compare, so conflicting re-declarations must be caught on
                # the computation itself or the second one is silently lost.
                raise TaskGraphError(
                    f"task '{task.task_id}' re-declared with a different computation"
                )
            return existing.task_id
        self._tasks[task.task_id] = task
        return task.task_id

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskGraphError(f"unknown task '{task_id}'") from None

    def tasks(self) -> List[Task]:
        """All nodes in insertion (declaration) order."""
        return list(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def edge_count(self) -> int:
        return sum(len(t.deps) for t in self._tasks.values())

    def validate(self) -> None:
        """Reject dangling dependency references."""
        for task in self._tasks.values():
            for dep in task.deps:
                if dep not in self._tasks:
                    raise TaskGraphError(
                        f"task '{task.task_id}' depends on unknown task '{dep}'"
                    )

    def topological_order(self) -> List[Task]:
        """Kahn's algorithm, stable w.r.t. declaration order.

        Raises :class:`TaskGraphCycleError` (naming the nodes involved) when
        the graph has no topological order.
        """
        self.validate()
        waiting = {t.task_id: len(t.deps) for t in self._tasks.values()}
        dependents: Dict[str, List[str]] = {t.task_id: [] for t in self._tasks.values()}
        for task in self._tasks.values():
            for dep in task.deps:
                dependents[dep].append(task.task_id)
        ready = deque(tid for tid, count in waiting.items() if count == 0)
        order: List[Task] = []
        while ready:
            task_id = ready.popleft()
            order.append(self._tasks[task_id])
            for dependent in dependents[task_id]:
                waiting[dependent] -= 1
                if waiting[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._tasks):
            stuck = sorted(tid for tid, count in waiting.items() if count > 0)
            raise TaskGraphCycleError(
                "task graph contains a dependency cycle involving: " + ", ".join(stuck)
            )
        return order


# ---------------------------------------------------------------------------
# picklable task payloads
# ---------------------------------------------------------------------------


def compute_compile(name: str, config: CompilerConfig) -> CompilationResult:
    """Pure compile payload: run the whole pipeline for one workload."""
    workload = get_workload(name)
    return TwillCompiler(config).compile_and_simulate(workload.source, name=name)


# Per-process memo of compile artifacts consumed by sweep-point payloads, so
# a worker that executes many sweep points for one workload unpickles (or
# recompiles, when caching is off) that workload's artifact only once.  Keyed
# by content address, so a stale value is impossible by construction; bounded
# so long test sessions cannot accumulate every artifact they ever touched.
_SWEEP_INPUT_MEMO: "OrderedDict[str, CompilationResult]" = OrderedDict()
_SWEEP_INPUT_MEMO_LIMIT = 16


def seed_sweep_input(key: str, result: CompilationResult) -> None:
    """Pre-populate the sweep-input memo (the parent already holds the
    artifact in memory, so in-parent sweep points skip the disk round trip)."""
    _SWEEP_INPUT_MEMO[key] = result
    _SWEEP_INPUT_MEMO.move_to_end(key)
    while len(_SWEEP_INPUT_MEMO) > _SWEEP_INPUT_MEMO_LIMIT:
        _SWEEP_INPUT_MEMO.popitem(last=False)


def _sweep_input(name: str, config: CompilerConfig, cache_root: Optional[str]) -> CompilationResult:
    """The compile artifact a sweep point re-simulates: memo → cache → compute."""
    key = compile_key(get_workload(name).source, config)
    hit = _SWEEP_INPUT_MEMO.get(key)
    if hit is not None:
        _SWEEP_INPUT_MEMO.move_to_end(key)
        return hit
    if cache_root is not None:
        result = ArtifactCache(Path(cache_root)).get_or_compute(
            key, lambda: compute_compile(name, config), serializer="pickle"
        )
    else:
        result = compute_compile(name, config)
    seed_sweep_input(key, result)
    return result


def compute_runtime_point(
    name: str, config: CompilerConfig, cache_root: Optional[str], runtime: RuntimeConfig
) -> float:
    """One Figure 6.5/6.6 sweep point: Twill cycles under a modified runtime."""
    result = _sweep_input(name, config, cache_root)
    timing = simulate_partitioned(
        result.module, result.execution.trace, result.dswp.partitioning, runtime, config.hls
    )
    return timing.total_cycles


def compute_split_point(
    name: str, config: CompilerConfig, cache_root: Optional[str], sw_fraction: float
) -> Dict[str, float]:
    """One Figure 6.3/6.4 sweep point: re-partition at *sw_fraction*."""
    result = _sweep_input(name, config, cache_root)
    dswp, system = resimulate_with_split(
        result.name,
        result.module,
        result.execution.trace,
        result.profile,
        result.legup,
        config,
        sw_fraction,
    )
    return {
        "cycles": system.twill.cycles,
        "queues": float(dswp.partitioning.total_queues),
        "speedup_vs_sw": system.speedup_vs_software,
    }


#: Worker→parent marker meaning "the value is in the cache, load it there":
#: large pickled artifacts are not worth shipping over the pipe when the
#: worker just wrote the identical bytes to the shared cache.
_IN_CACHE = "__repro_taskgraph_value_in_cache__"


def _execute_in_worker(
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    key: Optional[str],
    cache_root: Optional[str],
    serializer: str,
) -> Any:
    """Worker-side entry: run one task payload through the shared cache.

    ``get_or_compute`` gives single-flight semantics per key, so two workers
    (or two independent ``repro`` processes) racing on the same content
    address do the work once and share the stored entry.  Pickled artifacts
    come back as :data:`_IN_CACHE` (the parent re-reads them from the cache
    instead of paying a second multi-megabyte pipe serialisation); small
    JSON values are returned directly.
    """
    if key is not None and cache_root is not None:
        cache = ArtifactCache(Path(cache_root))
        value = cache.get_or_compute(key, lambda: fn(*args), serializer=serializer)
        return _IN_CACHE if serializer == "pickle" else value
    return fn(*args)


# ---------------------------------------------------------------------------
# node constructors (used by EvaluationHarness.declare_*)
# ---------------------------------------------------------------------------


def compile_task(name: str, config: CompilerConfig) -> Task:
    """The compile node for one workload (id ``compile:<name>``)."""
    return Task(
        task_id=f"compile:{name}",
        kind=KIND_COMPILE,
        fn=compute_compile,
        args=(name, config),
        key=compile_key(get_workload(name).source, config),
        serializer="pickle",
        workload=name,
    )


def runtime_task(
    name: str,
    config: CompilerConfig,
    cache_root: Optional[str],
    runtime: RuntimeConfig,
    label: str,
) -> Task:
    """One queue-latency/depth sweep-point node depending on its compile node."""
    parent = compile_key(get_workload(name).source, config)
    return Task(
        task_id=f"sweep:{label}",
        kind=KIND_RUNTIME,
        fn=compute_runtime_point,
        args=(name, config, cache_root, runtime),
        deps=(f"compile:{name}",),
        key=derived_key(parent, "runtime", runtime.to_dict()),
        serializer="json",
        workload=name,
    )


def split_task(
    name: str, config: CompilerConfig, cache_root: Optional[str], sw_fraction: float
) -> Task:
    """One partition-split sweep-point node depending on its compile node."""
    parent = compile_key(get_workload(name).source, config)
    return Task(
        task_id=f"sweep:split:{name}:{sw_fraction}",
        kind=KIND_SPLIT,
        fn=compute_split_point,
        args=(name, config, cache_root, sw_fraction),
        deps=(f"compile:{name}",),
        key=derived_key(parent, "split", {"sw_fraction": sw_fraction}),
        serializer="json",
        workload=name,
    )


def aggregate_task(
    task_id: str,
    fn: Callable[..., Any],
    deps: Sequence[str],
    args: Tuple[Any, ...] = (),
) -> Task:
    """A parent-side aggregation node (rows/tables from dependency values)."""
    return Task(
        task_id=task_id,
        kind=KIND_AGGREGATE,
        fn=fn,
        args=args,
        deps=tuple(deps),
        key=None,
    )


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


class TaskScheduler:
    """Executes a :class:`TaskGraph`, honouring dependencies.

    * ``jobs <= 1`` (or ``None``): every task runs in the parent, in
      topological (declaration-stable) order.
    * ``jobs > 1``: ready worker tasks are fanned out over one shared
      :class:`ProcessPoolExecutor`; aggregates always run in the parent as
      soon as their dependencies finish.  Pool workers exchange artefacts
      through *cache* rather than over the pipe; without a cache only
      dependency-free tasks (compiles) are pooled and dependent sweep points
      run in the parent.

    Keyed tasks are memoised through *cache* (parent-side pre-check, then
    worker-side ``get_or_compute`` under the per-key lock).  *seeds* maps
    task ids to already-known values (the harness's in-memory layer), which
    count as completed without running anything.
    """

    def __init__(
        self,
        graph: TaskGraph,
        cache: Optional[ArtifactCache] = None,
        jobs: Optional[int] = None,
        seeds: Optional[Mapping[str, Any]] = None,
    ):
        self.graph = graph
        self.cache = cache
        self.jobs = jobs
        self.seeds = dict(seeds or {})

    # -- execution -----------------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Execute every task; returns ``{task_id: value}`` for the whole graph."""
        order = self.graph.topological_order()
        jobs = self.jobs or 1
        if jobs > 1:
            return self._run_parallel(order, jobs)
        return self._run_serial(order)

    def _cached_or_none(self, task: Task) -> Optional[Any]:
        if task.key is not None and self.cache is not None:
            return self.cache.get(task.key)
        return None

    def _run_task_inline(self, task: Task, results: Dict[str, Any]) -> Any:
        if not task.runs_in_worker():
            return task.fn(results, *task.args)
        if task.key is not None and self.cache is not None:
            return self.cache.get_or_compute(
                task.key, lambda: task.fn(*task.args), serializer=task.serializer
            )
        return task.fn(*task.args)

    def _record(self, task: Task, value: Any, results: Dict[str, Any]) -> None:
        results[task.task_id] = value
        if task.kind == KIND_COMPILE and task.key is not None:
            # Sweep points of this workload (parent-side or freshly forked
            # workers) reuse the in-memory artifact instead of re-reading it.
            seed_sweep_input(task.key, value)

    def _run_serial(self, order: List[Task]) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        for task in order:
            if task.task_id in self.seeds:
                self._record(task, self.seeds[task.task_id], results)
                continue
            self._record(task, self._run_task_inline(task, results), results)
        return results

    def _run_parallel(self, order: List[Task], jobs: int) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        done: set = set()
        dependents: Dict[str, List[Task]] = {t.task_id: [] for t in order}
        for task in order:
            for dep in task.deps:
                dependents[dep].append(task)
        waiting: Dict[str, int] = {}
        ready: deque = deque()
        for task in order:
            waiting[task.task_id] = len(task.deps)

        def complete(task: Task, value: Any) -> None:
            self._record(task, value, results)
            done.add(task.task_id)
            for dependent in dependents[task.task_id]:
                waiting[dependent.task_id] -= 1
                if waiting[dependent.task_id] == 0:
                    ready.append(dependent)

        for task in order:
            if not task.deps:
                ready.append(task)

        cache_root = str(self.cache.root) if self.cache is not None else None
        # Honour the requested degree rather than capping at os.cpu_count():
        # in cgroup-limited containers the reported count is often wrong, and
        # an explicit --parallel N is an informed opt-in.
        max_workers = max(1, min(jobs, 32))
        pool: Optional[ProcessPoolExecutor] = None
        futures: Dict[Any, Task] = {}
        try:
            while ready or futures:
                while ready:
                    task = ready.popleft()
                    if task.task_id in self.seeds:
                        complete(task, self.seeds[task.task_id])
                        continue
                    if not task.runs_in_worker():
                        complete(task, task.fn(results, *task.args))
                        continue
                    hit = self._cached_or_none(task)
                    if hit is not None:
                        complete(task, hit)
                        continue
                    if cache_root is None and task.deps:
                        # Without the shared cache a worker cannot see its
                        # dependencies' artefacts, so dependent tasks (sweep
                        # points) run in the parent off the in-memory memo;
                        # dep-free compiles still fan out over the pool.
                        complete(task, self._run_task_inline(task, results))
                        continue
                    if pool is None:
                        pool = ProcessPoolExecutor(max_workers=max_workers)
                    future = pool.submit(
                        _execute_in_worker,
                        task.fn,
                        task.args,
                        task.key,
                        cache_root,
                        task.serializer,
                    )
                    futures[future] = task
                if futures:
                    finished, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                    for future in finished:
                        task = futures.pop(future)
                        value = future.result()
                        if isinstance(value, str) and value == _IN_CACHE:
                            value = self._cached_or_none(task)
                            if value is None:  # pruned/corrupted between write and read
                                value = self._run_task_inline(task, results)
                        complete(task, value)
        finally:
            if pool is not None:
                pool.shutdown()
        return results
