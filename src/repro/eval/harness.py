"""Shared evaluation harness.

Compiling a workload (front end, passes, functional trace, DSWP, HLS, three
timing replays) is the expensive part of every experiment, and most
tables/figures need the same compiled artefacts.  The harness therefore
caches one :class:`BenchmarkRun` per workload per configuration for the
lifetime of the process, so the eight experiment generators in
``repro.eval.experiments`` can share them (and so the pytest-benchmark
harness measures the interesting part of each experiment rather than
recompiling the world every time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CompilerConfig, RuntimeConfig
from repro.core.compiler import CompilationResult, TwillCompiler
from repro.sim.timing import TimingResult
from repro.workloads import all_workloads, get_workload
from repro.workloads.base import Workload


@dataclass
class BenchmarkRun:
    """One compiled-and-simulated workload."""

    workload: Workload
    result: CompilationResult

    @property
    def name(self) -> str:
        return self.workload.name

    def functional_outputs_match(self) -> bool:
        return self.result.outputs == self.workload.expected_outputs()


class EvaluationHarness:
    """Compiles workloads on demand and caches the results."""

    _shared: Optional["EvaluationHarness"] = None

    def __init__(self, config: Optional[CompilerConfig] = None, benchmarks: Optional[List[str]] = None):
        self.config = config or CompilerConfig()
        self.compiler = TwillCompiler(self.config)
        self.benchmark_names = benchmarks or [w.name for w in all_workloads()]
        self._runs: Dict[str, BenchmarkRun] = {}

    # -- shared instance --------------------------------------------------------------

    @classmethod
    def shared(cls) -> "EvaluationHarness":
        """Process-wide harness (used by the benchmark suite and the examples)."""
        if cls._shared is None:
            cls._shared = cls()
        return cls._shared

    # -- runs ------------------------------------------------------------------------------

    def run(self, name: str) -> BenchmarkRun:
        """Compile and simulate one workload (cached)."""
        cached = self._runs.get(name)
        if cached is not None:
            return cached
        workload = get_workload(name)
        result = self.compiler.compile_and_simulate(workload.source, name=name)
        run = BenchmarkRun(workload=workload, result=result)
        if not run.functional_outputs_match():
            raise AssertionError(
                f"functional outputs of '{name}' do not match the reference implementation"
            )
        self._runs[name] = run
        return run

    def run_all(self) -> List[BenchmarkRun]:
        return [self.run(name) for name in self.benchmark_names]

    # -- sweeps -----------------------------------------------------------------------------

    def twill_cycles_with_runtime(self, name: str, runtime: RuntimeConfig) -> float:
        """Twill cycle count for one workload under a modified runtime configuration."""
        run = self.run(name)
        timing: TimingResult = self.compiler.simulate_with_runtime(run.result, runtime)
        return timing.total_cycles

    def twill_cycles_with_split(self, name: str, sw_fraction: float) -> Dict[str, float]:
        """Re-partition with a different targeted SW share and report cycles + queues."""
        run = self.run(name)
        new_result = self.compiler.resimulate_with_split(run.result, sw_fraction)
        return {
            "cycles": new_result.system.twill.cycles,
            "queues": float(new_result.dswp.partitioning.total_queues),
            "speedup_vs_sw": new_result.system.speedup_vs_software,
        }
