"""Shared evaluation harness: cached, parallel compilation of the benchmark set.

Compiling a workload (front end, passes, functional trace, DSWP, HLS, three
timing replays) is the expensive part of every experiment, and most
tables/figures need the same compiled artefacts.  The harness therefore
caches at three levels:

1. **in memory** — one :class:`BenchmarkRun` per workload for the lifetime of
   the harness, so the experiment generators in ``repro.eval.experiments``
   share compiled artefacts within a process;
2. **on disk** — pickled :class:`repro.core.compiler.CompilationResult`
   objects in a content-addressed :class:`repro.eval.cache.ArtifactCache`
   under ``.repro_cache/``, so repeat invocations of any table, figure or CLI
   command skip compilation entirely;
3. **derived artefacts** — the small re-simulation results behind the queue
   latency/depth and partition-split sweeps (Figures 6.3-6.6), which dominate
   a full report's wall time, are disk-cached too.

Workloads can be compiled concurrently with ``run_all(parallel=N)``, which
fans the cache misses out over a :class:`concurrent.futures.ProcessPoolExecutor`
while keeping results deterministic: the parallel path produces exactly the
same rows (and table bytes) as the serial path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import CompilerConfig, RuntimeConfig
from repro.core.compiler import CompilationResult, TwillCompiler
from repro.eval.cache import ArtifactCache, compile_key, derived_key
from repro.sim.timing import TimingResult
from repro.workloads import all_workloads, get_workload
from repro.workloads.base import Workload


@dataclass
class BenchmarkRun:
    """One compiled-and-simulated workload."""

    workload: Workload
    result: CompilationResult

    @property
    def name(self) -> str:
        return self.workload.name

    def functional_outputs_match(self) -> bool:
        return self.result.outputs == self.workload.expected_outputs()


def _compile_workload(name: str, config: CompilerConfig, cache_root: Optional[str]) -> CompilationResult:
    """Compile one workload, going through the disk cache when enabled.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; each worker
    consults and populates the same content-addressed cache as the parent, so
    a parallel cold run leaves the cache fully warm.
    """
    workload = get_workload(name)
    cache = ArtifactCache(Path(cache_root)) if cache_root is not None else None
    key = compile_key(workload.source, config)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = TwillCompiler(config).compile_and_simulate(workload.source, name=name)
    if cache is not None:
        cache.put(key, result)
    return result


class EvaluationHarness:
    """Compiles workloads on demand and caches the results.

    Parameters
    ----------
    config:
        Compiler/simulator configuration; defaults to the thesis §6 setup.
    benchmarks:
        Workload names this harness covers; defaults to all eight kernels.
    cache:
        An explicit :class:`ArtifactCache` to use for on-disk artefacts.
    cache_dir:
        Directory for a fresh :class:`ArtifactCache` (ignored when *cache* is
        given); defaults to ``$REPRO_CACHE_DIR`` or ``./.repro_cache``.
    use_cache:
        Set ``False`` to disable the disk cache entirely (in-memory caching
        always stays on).
    """

    _shared_instances: Dict[Tuple[str, Tuple[str, ...]], "EvaluationHarness"] = {}

    def __init__(
        self,
        config: Optional[CompilerConfig] = None,
        benchmarks: Optional[Sequence[str]] = None,
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
    ):
        self.config = config or CompilerConfig()
        self.compiler = TwillCompiler(self.config)
        self.benchmark_names = list(benchmarks) if benchmarks else [w.name for w in all_workloads()]
        if not use_cache:
            self.cache: Optional[ArtifactCache] = None
        elif cache is not None:
            self.cache = cache
        else:
            self.cache = ArtifactCache(Path(cache_dir)) if cache_dir is not None else ArtifactCache()
        self._runs: Dict[str, BenchmarkRun] = {}
        self._compile_keys: Dict[str, str] = {}
        self._derived: Dict[str, object] = {}

    # -- shared instances --------------------------------------------------------------

    @classmethod
    def shared(
        cls,
        config: Optional[CompilerConfig] = None,
        benchmarks: Optional[Sequence[str]] = None,
    ) -> "EvaluationHarness":
        """Process-wide harness for a given configuration and benchmark set.

        Instances are keyed by ``(config.content_hash(), tuple(benchmarks))``,
        so callers asking for different configurations or benchmark subsets
        get *different* cached harnesses instead of one global that silently
        ignores its arguments: ``shared()`` twice returns the same object,
        while ``shared(config=...)`` with any knob changed (or a different
        benchmark list) returns a fresh harness with its own in-memory run
        cache.  All instances still share the on-disk artifact cache, which
        is keyed by the same config hash and therefore never mixes artefacts
        across configurations.
        """
        config = config or CompilerConfig()
        names = tuple(benchmarks) if benchmarks else tuple(w.name for w in all_workloads())
        key = (config.content_hash(), names)
        instance = cls._shared_instances.get(key)
        if instance is None:
            instance = cls(config=config, benchmarks=list(names))
            cls._shared_instances[key] = instance
        return instance

    @classmethod
    def reset_shared(cls) -> None:
        """Drop all shared instances (used by tests)."""
        cls._shared_instances.clear()

    # -- cache keys --------------------------------------------------------------------

    def _compile_key(self, name: str) -> str:
        key = self._compile_keys.get(name)
        if key is None:
            key = compile_key(get_workload(name).source, self.config)
            self._compile_keys[name] = key
        return key

    # -- runs ------------------------------------------------------------------------------

    def _admit(self, name: str, result: CompilationResult) -> BenchmarkRun:
        run = BenchmarkRun(workload=get_workload(name), result=result)
        if not run.functional_outputs_match():
            raise AssertionError(
                f"functional outputs of '{name}' do not match the reference implementation"
            )
        self._runs[name] = run
        return run

    def run(self, name: str) -> BenchmarkRun:
        """Compile and simulate one workload (memory- and disk-cached)."""
        cached = self._runs.get(name)
        if cached is not None:
            return cached
        cache_root = str(self.cache.root) if self.cache is not None else None
        result = _compile_workload(name, self.config, cache_root)
        return self._admit(name, result)

    def run_all(self, parallel: Optional[int] = None) -> List[BenchmarkRun]:
        """Compile and simulate every workload of this harness.

        With ``parallel=N`` (N > 1) the uncompiled, not-disk-cached workloads
        are fanned out over N worker processes; disk-cache hits are loaded in
        the parent since unpickling is far cheaper than a round trip through
        the pool.  Results are identical to the serial path.
        """
        missing = [name for name in self.benchmark_names if name not in self._runs]
        if parallel is not None and parallel > 1 and missing:
            to_compile = []
            for name in missing:
                hit = self.cache.get(self._compile_key(name)) if self.cache is not None else None
                if hit is not None:
                    self._admit(name, hit)
                else:
                    to_compile.append(name)
            if to_compile:
                cache_root = str(self.cache.root) if self.cache is not None else None
                workers = min(parallel, len(to_compile), os.cpu_count() or 1)
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(_compile_workload, name, self.config, cache_root)
                        for name in to_compile
                    ]
                    for name, future in zip(to_compile, futures):
                        self._admit(name, future.result())
        return [self.run(name) for name in self.benchmark_names]

    # -- sweeps -----------------------------------------------------------------------------

    def _derived_cached(self, key: str, compute):
        """Memoise a derived artefact in memory and (when enabled) on disk."""
        hit = self._derived.get(key)
        if hit is not None:
            return hit
        if self.cache is not None:
            disk = self.cache.get(key)
            if disk is not None:
                self._derived[key] = disk
                return disk
        value = compute()
        self._derived[key] = value
        if self.cache is not None:
            self.cache.put(key, value)
        return value

    def twill_cycles_with_runtime(self, name: str, runtime: RuntimeConfig) -> float:
        """Twill cycle count for one workload under a modified runtime configuration."""
        key = derived_key(self._compile_key(name), "runtime", runtime.to_dict())

        def compute() -> float:
            run = self.run(name)
            timing: TimingResult = self.compiler.simulate_with_runtime(run.result, runtime)
            return timing.total_cycles

        return self._derived_cached(key, compute)

    def twill_cycles_with_split(self, name: str, sw_fraction: float) -> Dict[str, float]:
        """Re-partition with a different targeted SW share and report cycles + queues."""
        key = derived_key(self._compile_key(name), "split", {"sw_fraction": sw_fraction})

        def compute() -> Dict[str, float]:
            run = self.run(name)
            new_result = self.compiler.resimulate_with_split(run.result, sw_fraction)
            return {
                "cycles": new_result.system.twill.cycles,
                "queues": float(new_result.dswp.partitioning.total_queues),
                "speedup_vs_sw": new_result.system.speedup_vs_software,
            }

        return self._derived_cached(key, compute)
