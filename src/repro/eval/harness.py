"""Shared evaluation harness: cached, parallel task-graph execution.

Compiling a workload (front end, passes, functional trace, DSWP, HLS, three
timing replays) is the expensive part of every experiment, and most
tables/figures need the same compiled artefacts.  The harness therefore
caches at three levels:

1. **in memory** — one :class:`BenchmarkRun` per workload (plus one value per
   derived sweep key) for the lifetime of the harness, so the experiment
   generators in ``repro.eval.experiments`` share artefacts within a process;
2. **on disk** — a content-addressed :class:`repro.eval.cache.ArtifactCache`
   under ``.repro_cache/`` (pickled compile artifacts, structured-JSON sweep
   artifacts), so repeat invocations of any table, figure or CLI command skip
   the work entirely;
3. **single-flight** — keyed computations go through per-key advisory file
   locks, so concurrent processes missing on the same key compute it once.

Work is expressed as :mod:`repro.eval.taskgraph` DAGs: the ``declare_*``
methods add compile and sweep-point nodes, and :meth:`execute` runs a whole
graph — serially, or fanned out over a :class:`concurrent.futures.
ProcessPoolExecutor` with ``parallel=N`` — while keeping results
deterministic: the parallel path produces exactly the same rows (and table
bytes) as the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import CompilerConfig, RuntimeConfig
from repro.core.compiler import CompilationResult, TwillCompiler
from repro.eval import taskgraph
from repro.eval.cache import ArtifactCache, compile_key, derived_key
from repro.eval.taskgraph import TaskExecutor, TaskGraph, TaskScheduler
from repro.eval.trace import TraceRecorder
from repro.obs import tracing as obs_tracing
from repro.workloads import all_workloads, get_workload
from repro.workloads.base import Workload


@dataclass
class BenchmarkRun:
    """One compiled-and-simulated workload."""

    workload: Workload
    result: CompilationResult

    @property
    def name(self) -> str:
        return self.workload.name

    def functional_outputs_match(self) -> bool:
        return self.result.outputs == self.workload.expected_outputs()


class EvaluationHarness:
    """Compiles workloads on demand and caches the results.

    Parameters
    ----------
    config:
        Compiler/simulator configuration; defaults to the thesis §6 setup.
    benchmarks:
        Workload names this harness covers; defaults to all eight kernels.
    cache:
        An explicit :class:`ArtifactCache` to use for on-disk artefacts.
    cache_dir:
        Cache spec for a fresh :class:`ArtifactCache` (ignored when *cache*
        is given): a directory path or an ``http(s)://`` URL of a
        ``repro cache serve`` service; defaults to ``$REPRO_CACHE_DIR`` or
        ``./.repro_cache``.
    use_cache:
        Set ``False`` to disable the disk cache entirely (in-memory caching
        always stays on; parallel graph execution then pools only the
        dependency-free compile tasks, since pool workers hand artefacts to
        their dependents through the disk cache).
    """

    _shared_instances: Dict[Tuple[str, Tuple[str, ...]], "EvaluationHarness"] = {}

    def __init__(
        self,
        config: Optional[CompilerConfig] = None,
        benchmarks: Optional[Sequence[str]] = None,
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
    ):
        self.config = config or CompilerConfig()
        self.compiler = TwillCompiler(self.config)
        self.benchmark_names = list(benchmarks) if benchmarks else [w.name for w in all_workloads()]
        if not use_cache:
            self.cache: Optional[ArtifactCache] = None
        elif cache is not None:
            self.cache = cache
        else:
            # cache_dir is a cache *spec*: a directory path, or an
            # ``http(s)://`` URL of a ``repro cache serve`` service.
            self.cache = ArtifactCache.from_spec(
                cache_dir, hmac_key=self.config.runtime.cache_hmac_key
            )
        self._runs: Dict[str, BenchmarkRun] = {}
        self._compile_keys: Dict[str, str] = {}
        self._derived: Dict[str, Any] = {}
        #: Execution statistics of the most recent :meth:`execute` (cache
        #: hits, seeds, executed tasks by kind) — what ``repro report --html``
        #: publishes as the run's cache-hit stats.
        self.last_stats: Dict[str, Any] = {}

    # -- shared instances --------------------------------------------------------------

    @classmethod
    def shared(
        cls,
        config: Optional[CompilerConfig] = None,
        benchmarks: Optional[Sequence[str]] = None,
    ) -> "EvaluationHarness":
        """Process-wide harness for a given configuration and benchmark set.

        Instances are keyed by ``(config.content_hash(), tuple(benchmarks))``,
        so callers asking for different configurations or benchmark subsets
        get *different* cached harnesses instead of one global that silently
        ignores its arguments: ``shared()`` twice returns the same object,
        while ``shared(config=...)`` with any knob changed (or a different
        benchmark list) returns a fresh harness with its own in-memory run
        cache.  All instances still share the on-disk artifact cache, which
        is keyed by the same config hash and therefore never mixes artefacts
        across configurations.
        """
        config = config or CompilerConfig()
        names = tuple(benchmarks) if benchmarks else tuple(w.name for w in all_workloads())
        key = (config.content_hash(), names)
        instance = cls._shared_instances.get(key)
        if instance is None:
            instance = cls(config=config, benchmarks=list(names))
            cls._shared_instances[key] = instance
        return instance

    @classmethod
    def reset_shared(cls) -> None:
        """Drop all shared instances (used by tests)."""
        cls._shared_instances.clear()

    # -- cache keys --------------------------------------------------------------------

    def _compile_key(self, name: str) -> str:
        key = self._compile_keys.get(name)
        if key is None:
            key = compile_key(get_workload(name).source, self.config)
            self._compile_keys[name] = key
        return key

    @property
    def _cache_root(self) -> Optional[str]:
        """The cache *spec* worker payloads reconstruct their cache from
        (a directory path or a cache-service URL)."""
        return self.cache.spec if self.cache is not None else None

    # -- graph declaration -------------------------------------------------------------

    def declare_compile(self, graph: TaskGraph, name: str) -> str:
        """Add (or reuse) the compile node for *name*; returns its task id."""
        return graph.add(taskgraph.compile_task(name, self.config))

    def declare_runtime_point(
        self, graph: TaskGraph, name: str, runtime: RuntimeConfig, label: str
    ) -> str:
        """Add one queue-latency/depth sweep-point node (and its compile dep)."""
        self.declare_compile(graph, name)
        return graph.add(
            taskgraph.runtime_task(name, self.config, self._cache_root, runtime, label)
        )

    def declare_split_point(self, graph: TaskGraph, name: str, sw_fraction: float) -> str:
        """Add one partition-split sweep-point node (and its compile dep)."""
        self.declare_compile(graph, name)
        return graph.add(
            taskgraph.split_task(name, self.config, self._cache_root, sw_fraction)
        )

    def declare_explore_point(self, graph: TaskGraph, name: str, space, candidate) -> str:
        """Add one design-space-exploration candidate node (and its compile dep).

        *space* / *candidate* come from :mod:`repro.explore.space`; imported
        lazily so the harness stays importable without the explore package
        loaded (and to keep the module dependency graph acyclic).
        """
        from repro.explore.evaluate import explore_task

        self.declare_compile(graph, name)
        return graph.add(
            explore_task(name, self.config, self._cache_root, space, candidate)
        )

    def declare_ingest(
        self,
        graph: TaskGraph,
        name: str,
        source: str,
        filename: str,
        includes: Sequence[str] = (),
        skipped_includes: Sequence[str] = (),
    ) -> str:
        """Add one C-file ingest-report node (no dependencies).

        *source* is the preprocessed text (it travels with the task), so the
        node is self-contained and content-addressed by source + config +
        code digest.  Imported lazily like :meth:`declare_explore_point` to
        keep the module dependency graph acyclic.
        """
        from repro.ingest.evaluate import ingest_task

        return graph.add(
            ingest_task(name, source, filename, self.config, tuple(includes), tuple(skipped_includes))
        )

    # -- graph execution ---------------------------------------------------------------

    def execute(
        self,
        graph: TaskGraph,
        parallel: Optional[int] = None,
        executor: Optional[TaskExecutor] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> Dict[str, Any]:
        """Run every task of *graph*; returns ``{task_id: value}``.

        The harness's in-memory layers seed the scheduler (already-compiled
        workloads and already-computed sweep values run nothing), and every
        new result flows back into them afterwards — including the
        functional-output check each compile artifact must pass before any
        experiment may use it.  With ``parallel=N`` (N > 1) cold worker tasks
        fan out over a process pool; an explicit *executor* (e.g. a
        :class:`repro.eval.remote.executor.RemoteExecutor`) replaces the pool
        with remote workers.  Results are identical to the serial path either
        way.  *trace* collects per-task execution spans for ``--trace``.
        """
        seeds: Dict[str, Any] = {}
        for task in graph:
            if task.kind == taskgraph.KIND_COMPILE and task.workload in self._runs:
                seeds[task.task_id] = self._runs[task.workload].result
            elif task.key is not None and task.key in self._derived:
                seeds[task.task_id] = self._derived[task.key]
        scheduler = TaskScheduler(
            graph, cache=self.cache, jobs=parallel, seeds=seeds, executor=executor, trace=trace
        )
        with obs_tracing.span(
            "harness.execute",
            kind="harness",
            tasks=len(graph),
            parallel=parallel or 1,
            remote=executor is not None,
        ):
            results = scheduler.run()
        self.last_stats = scheduler.stats
        for task in graph:
            if task.kind == taskgraph.KIND_COMPILE:
                if task.workload not in self._runs:
                    self._admit(task.workload, results[task.task_id])
            elif task.kind in taskgraph.DERIVED_KINDS:
                self._derived[task.key] = results[task.task_id]
        self._auto_prune()
        return results

    def _auto_prune(self) -> None:
        """Enforce the optional ``RuntimeConfig.cache_max_bytes`` LRU bound."""
        max_bytes = self.config.runtime.cache_max_bytes
        if self.cache is not None and max_bytes is not None:
            self.cache.prune(max_bytes)

    # -- runs ------------------------------------------------------------------------------

    def _admit(self, name: str, result: CompilationResult) -> BenchmarkRun:
        run = BenchmarkRun(workload=get_workload(name), result=result)
        if not run.functional_outputs_match():
            raise AssertionError(
                f"functional outputs of '{name}' do not match the reference implementation"
            )
        self._runs[name] = run
        return run

    def run(self, name: str) -> BenchmarkRun:
        """Compile and simulate one workload (memory- and disk-cached)."""
        cached = self._runs.get(name)
        if cached is not None:
            return cached
        key = self._compile_key(name)
        if self.cache is not None:
            result = self.cache.get_or_compute(
                key, lambda: taskgraph.compute_compile(name, self.config), serializer="pickle"
            )
        else:
            result = taskgraph.compute_compile(name, self.config)
        return self._admit(name, result)

    def run_all(self, parallel: Optional[int] = None) -> List[BenchmarkRun]:
        """Compile and simulate every workload of this harness.

        Declares one compile node per workload and executes the graph; with
        ``parallel=N`` (N > 1) the uncompiled, not-disk-cached workloads are
        fanned out over N worker processes.  Results are identical to the
        serial path.
        """
        graph = TaskGraph()
        for name in self.benchmark_names:
            self.declare_compile(graph, name)
        self.execute(graph, parallel=parallel)
        return [self._runs[name] for name in self.benchmark_names]

    # -- sweeps -----------------------------------------------------------------------------

    def _derived_cached(self, key: str, compute, serializer: str = "json"):
        """Memoise a derived artefact in memory and (when enabled) on disk."""
        hit = self._derived.get(key)
        if hit is not None:
            return hit
        if self.cache is not None:
            value = self.cache.get_or_compute(key, compute, serializer=serializer)
        else:
            value = compute()
        self._derived[key] = value
        return value

    def twill_cycles_with_runtime(self, name: str, runtime: RuntimeConfig) -> float:
        """Twill cycle count for one workload under a modified runtime configuration.

        Single-point counterpart of a ``runtime`` task node — it runs the
        same payload function, so CLI one-offs and graph runs cannot diverge.
        """
        key = derived_key(self._compile_key(name), "runtime", runtime.to_dict())

        def compute() -> float:
            taskgraph.seed_sweep_input(self._compile_key(name), self.run(name).result)
            return taskgraph.compute_runtime_point(name, self.config, self._cache_root, runtime)

        return self._derived_cached(key, compute)

    def twill_cycles_with_split(self, name: str, sw_fraction: float) -> Dict[str, float]:
        """Re-partition with a different targeted SW share and report cycles + queues.

        Single-point counterpart of a ``split`` task node (same payload)."""
        key = derived_key(self._compile_key(name), "split", {"sw_fraction": sw_fraction})

        def compute() -> Dict[str, float]:
            taskgraph.seed_sweep_input(self._compile_key(name), self.run(name).result)
            return taskgraph.compute_split_point(name, self.config, self._cache_root, sw_fraction)

        return self._derived_cached(key, compute)
