"""Tests of the design-space exploration subsystem (``repro.explore``).

Layered cheapest-first, like the viz suite:

* pure unit tests of Pareto dominance (ties, duplicated points,
  single-objective collapse) and of the search space / strategies on
  synthetic cost functions — no compiles;
* end-to-end determinism on the cheapest workload: identical frontiers for
  the same seed + budget whether the search runs serially, over ``-j 2``,
  or is killed after one generation and resumed; a warm re-run evaluates
  nothing; and the report's embedded exploration artefact is
  byte-identical serial vs parallel.
"""

import json

import pytest

from repro.errors import ConfigError, ReproError
from repro.eval.harness import EvaluationHarness
from repro.explore.driver import ExplorationDriver
from repro.explore.frontier import Frontier, Objective, dominates, pareto_indices, scalar_cost
from repro.explore.space import Dimension, SearchSpace, default_space, report_space
from repro.explore.strategies import STRATEGIES, make_strategy

# A deliberately tiny space so end-to-end searches stay cheap: 6 candidates.
SMALL_SPACE = SearchSpace(
    dimensions=(
        Dimension("sw_fraction", "partition", "sw_fraction", (0.25, 0.5, 0.75)),
        Dimension("queue_depth", "runtime", "queue_depth", (4, 8)),
    )
)


def make_harness(tmp_path, **kwargs):
    return EvaluationHarness(
        benchmarks=["blowfish"], cache_dir=str(tmp_path / "cache"), **kwargs
    )


# ---------------------------------------------------------------------------
# Pareto dominance
# ---------------------------------------------------------------------------


def test_dominates_requires_strict_improvement_somewhere():
    assert dominates((1.0, 1.0), (2.0, 1.0))
    assert not dominates((1.0, 1.0), (1.0, 1.0))  # equality is not dominance
    assert not dominates((1.0, 2.0), (2.0, 1.0))  # trade-off: incomparable


def test_pareto_front_basic_and_deterministic_order():
    objectives = (Objective("a", "a"), Objective("b", "b"))
    results = [
        {"a": 3.0, "b": 1.0},   # frontier
        {"a": 2.0, "b": 2.0},   # frontier
        {"a": 3.0, "b": 3.0},   # dominated by both
        {"a": 1.0, "b": 4.0},   # frontier
    ]
    keys = ["p0", "p1", "p2", "p3"]
    front = pareto_indices(results, objectives, keys)
    assert front == [3, 1, 0]  # sorted by objective vector
    assert front == pareto_indices(results, objectives, keys)


def test_pareto_ties_are_incomparable_and_both_kept():
    objectives = (Objective("a", "a"), Objective("b", "b"))
    results = [
        {"a": 1.0, "b": 2.0},
        {"a": 2.0, "b": 1.0},
        {"a": 1.0, "b": 2.0 + 0.0},  # duplicate of the first vector
    ]
    # Distinct params behind an identical vector: exactly one survives,
    # chosen by the smallest canonical key, not by position.
    front = pareto_indices(results, objectives, ["z", "m", "a"])
    assert front == [2, 1]
    front = pareto_indices(results, objectives, ["a", "m", "z"])
    assert front == [0, 1]


def test_pareto_single_objective_collapses_to_the_minimum():
    objectives = (Objective("cost", "cost"),)
    results = [{"cost": c} for c in (5.0, 2.0, 9.0, 2.0)]
    front = pareto_indices(results, objectives, ["w", "x", "y", "b"])
    assert len(front) == 1
    assert results[front[0]]["cost"] == 2.0
    assert front == [3]  # the duplicate minimum with the smaller key wins


def test_pareto_maximise_sense_inverts():
    objectives = (Objective("speed", "speed", sense="max"),)
    results = [{"speed": 1.0}, {"speed": 7.0}, {"speed": 3.0}]
    assert pareto_indices(results, objectives, ["a", "b", "c"]) == [1]


def test_frontier_rows_and_best_by():
    evaluations = [
        ({"x": 1}, {"area_luts": 100, "cycles": 50.0, "power_mw": 10.0, "speedup_vs_sw": 2.0}),
        ({"x": 2}, {"area_luts": 50, "cycles": 80.0, "power_mw": 10.0, "speedup_vs_sw": 1.5}),
        ({"x": 3}, {"area_luts": 120, "cycles": 90.0, "power_mw": 20.0, "speedup_vs_sw": 1.0}),
    ]
    frontier = Frontier(evaluations)
    assert len(frontier) == 2  # x=3 is dominated by x=1
    assert [row["params"]["x"] for row in frontier.to_rows()] == [2, 1]
    assert frontier.best_by("cycles")[0] == {"x": 1}
    assert frontier.best_by("area")[0] == {"x": 2}


# ---------------------------------------------------------------------------
# search space
# ---------------------------------------------------------------------------


def test_space_enumeration_is_deterministic_and_complete():
    assert SMALL_SPACE.size() == 6
    first = list(SMALL_SPACE.candidates())
    assert len(set(first)) == 6
    assert first == list(SMALL_SPACE.candidates())


def test_space_rejects_bad_dimensions():
    with pytest.raises(ConfigError, match="unknown config section"):
        SearchSpace((Dimension("x", "nope", "sw_fraction", (0.5,)),))
    with pytest.raises(ConfigError, match="no field"):
        SearchSpace((Dimension("x", "partition", "ghost_knob", (1,)),))
    with pytest.raises(ConfigError):
        # 1.5 fails PartitionConfig.validate (sw_fraction must be in [0, 1]).
        SearchSpace((Dimension("x", "partition", "sw_fraction", (0.5, 1.5)),))


def test_candidate_apply_builds_validated_configs():
    from repro.config import CompilerConfig

    base = CompilerConfig()
    candidate = SMALL_SPACE.candidate({"sw_fraction": 0.75, "queue_depth": 4})
    config = candidate.apply(SMALL_SPACE, base)
    assert config.partition.sw_fraction == 0.75
    assert config.runtime.queue_depth == 4
    assert base.partition.sw_fraction == 0.25  # baseline untouched
    assert config.content_hash() != base.content_hash()
    with pytest.raises(ReproError):
        SMALL_SPACE.candidate({"sw_fraction": 0.33, "queue_depth": 4})  # off-grid
    with pytest.raises(ReproError):
        SMALL_SPACE.candidate({"sw_fraction": 0.5})  # missing dimension


def test_neighbours_step_one_dimension_at_a_time():
    centre = SMALL_SPACE.candidate({"sw_fraction": 0.5, "queue_depth": 4})
    neighbours = SMALL_SPACE.neighbours(centre)
    assert len(neighbours) == 3  # sw down, sw up, depth up (4 is the edge)
    for neighbour in neighbours:
        diffs = [
            name for name in ("sw_fraction", "queue_depth")
            if neighbour.value(name) != centre.value(name)
        ]
        assert len(diffs) == 1


def test_initial_snaps_to_the_baseline_config():
    initial = default_space().initial()
    assert initial.value("sw_fraction") == 0.25  # the thesis default
    assert initial.value("queue_depth") == 8


# ---------------------------------------------------------------------------
# strategies on a synthetic cost surface (no compiles)
# ---------------------------------------------------------------------------


def synthetic_result(candidate):
    """A convex-ish deterministic cost surface over SMALL_SPACE."""
    sw = candidate.value("sw_fraction")
    depth = candidate.value("queue_depth")
    cost = (sw - 0.5) ** 2 + (depth - 8) ** 2 / 64.0
    return {"area_luts": 1000.0 + cost, "cycles": 1000.0 + cost, "power_mw": 100.0}


def drive(strategy):
    """Run a strategy to completion against the synthetic surface."""
    generations = 0
    while True:
        batch = strategy.propose()
        if not batch:
            break
        strategy.observe([(c, synthetic_result(c)) for c in batch])
        generations += 1
        assert generations < 100, "strategy failed to terminate"
    return strategy


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_every_strategy_respects_the_budget_and_terminates(name):
    strategy = drive(make_strategy(name, SMALL_SPACE, budget=4, seed=9))
    assert 1 <= len(strategy.evaluated) <= 4


def test_exhaustive_covers_the_space_within_budget():
    strategy = drive(make_strategy("exhaustive", SMALL_SPACE, budget=10, seed=0))
    assert len(strategy.evaluated) == SMALL_SPACE.size()


def test_random_is_seed_reproducible_and_seed_sensitive():
    one = drive(make_strategy("random", SMALL_SPACE, budget=3, seed=5))
    two = drive(make_strategy("random", SMALL_SPACE, budget=3, seed=5))
    assert list(one.evaluated) == list(two.evaluated)
    other = drive(make_strategy("random", default_space(), budget=3, seed=6))
    same = drive(make_strategy("random", default_space(), budget=3, seed=5))
    assert list(other.evaluated) != list(same.evaluated)


def test_greedy_descends_to_the_synthetic_optimum():
    strategy = drive(make_strategy("greedy", SMALL_SPACE, budget=6, seed=0))
    best = min(strategy.evaluated.values(), key=scalar_cost)
    optimum = SMALL_SPACE.candidate({"sw_fraction": 0.5, "queue_depth": 8})
    assert strategy.evaluated[optimum] == best


def test_annealing_walk_is_seed_deterministic():
    one = drive(make_strategy("annealing", SMALL_SPACE, budget=5, seed=11))
    two = drive(make_strategy("annealing", SMALL_SPACE, budget=5, seed=11))
    assert list(one.evaluated) == list(two.evaluated)


def test_unknown_strategy_fails_cleanly():
    with pytest.raises(ReproError, match="unknown exploration strategy"):
        make_strategy("gradient", SMALL_SPACE, budget=4, seed=0)


# ---------------------------------------------------------------------------
# end-to-end determinism: serial vs parallel vs resumed-after-kill
# ---------------------------------------------------------------------------


def run_search(harness, **overrides):
    options = dict(
        strategy="annealing", budget=5, seed=7, space=SMALL_SPACE,
    )
    options.update(overrides)
    return ExplorationDriver(harness, "blowfish", **options)


def test_same_seed_serial_vs_parallel_vs_resumed_identical(tmp_path):
    serial_driver = run_search(make_harness(tmp_path / "serial"))
    serial = serial_driver.run().to_json_dict()

    parallel = run_search(make_harness(tmp_path / "parallel"), jobs=2).run().to_json_dict()
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)

    # "Kill" a third search after its first generation (the journal persists),
    # then resume with a fresh driver: identical frontier, and the completed
    # generation is replayed from the journal, not re-executed.
    killed = run_search(make_harness(tmp_path / "resumed"), max_generations=1)
    killed.run()
    resumed_driver = run_search(make_harness(tmp_path / "resumed"))
    resumed = resumed_driver.run()
    assert json.dumps(resumed.to_json_dict(), sort_keys=True) == json.dumps(
        serial, sort_keys=True
    )
    assert resumed_driver.stats["replayed"] >= 1
    assert resumed_driver.stats["executed"] < serial_driver.stats["executed"]


def test_warm_rerun_evaluates_nothing_and_is_byte_identical(tmp_path):
    cold_driver = run_search(make_harness(tmp_path))
    cold = cold_driver.run().to_json_dict()
    assert cold_driver.stats["executed"] > 0
    warm_driver = run_search(make_harness(tmp_path))
    warm = warm_driver.run().to_json_dict()
    assert warm_driver.stats["executed"] == 0  # journal + cache satisfy everything
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)


def test_search_without_cache_still_works(tmp_path):
    harness = EvaluationHarness(benchmarks=["blowfish"], use_cache=False)
    result = run_search(harness, strategy="exhaustive", budget=3).run()
    assert len(result.evaluations) == 3
    assert len(result.frontier) >= 1


def test_frontier_members_are_evaluated_candidates(tmp_path):
    result = run_search(make_harness(tmp_path), strategy="exhaustive", budget=6).run()
    evaluated_params = [c.params() for c, _ in result.evaluations]
    frontier_rows = result.frontier.to_rows()
    assert frontier_rows, "exhaustive search over a real workload found no frontier"
    for row in frontier_rows:
        assert row["params"] in evaluated_params
        assert row["area_luts"] > 0 and row["cycles"] > 0 and row["power_mw"] > 0


def test_driver_rejects_foreign_workloads(tmp_path):
    with pytest.raises(ReproError, match="not in this harness's benchmark set"):
        ExplorationDriver(make_harness(tmp_path), "mips")


# ---------------------------------------------------------------------------
# the report's embedded exploration artefact
# ---------------------------------------------------------------------------


def test_report_exploration_artefact_serial_vs_parallel(tmp_path):
    from repro.eval import experiments

    serial = experiments.run_report(harness=make_harness(tmp_path / "s"))
    parallel = experiments.run_report(harness=make_harness(tmp_path / "p"), parallel=2)
    assert serial["exploration"] == parallel["exploration"]
    exploration = serial["exploration"]
    assert exploration["workloads"] == ["blowfish"]
    assert len(exploration["rows"]) == report_space().size()
    assert exploration["frontier_sizes"]["blowfish"] >= 1
    assert any(row["pareto"] for row in exploration["rows"])
    # The progress curve is monotonically non-increasing and starts at 1.0.
    curve = exploration["progress"]["blowfish"]
    assert curve[0] == 1.0
    assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))


# ---------------------------------------------------------------------------
# incremental evaluation: the shared re-partition stage
# ---------------------------------------------------------------------------


def test_repartition_runs_once_per_distinct_partition(tmp_path, monkeypatch):
    """Candidates differing only in runtime dimensions share one DSWP run.

    SMALL_SPACE is 3 split targets x 2 queue depths = 6 candidates; the
    re-partition stage is keyed by partition parameters alone, so a cold
    sweep must invoke DSWP exactly 3 times — the memo and the on-disk stage
    cache absorb the other 3 — and a second sweep in the same process must
    invoke it 0 times.
    """
    from repro.config import CompilerConfig
    from repro.explore import evaluate

    evaluate._DSWP_MEMO.clear()
    calls = []
    real_repartition = evaluate.repartition

    def counting(*args, **kwargs):
        calls.append(1)
        return real_repartition(*args, **kwargs)

    monkeypatch.setattr(evaluate, "repartition", counting)
    config = CompilerConfig()
    cache_root = str(tmp_path / "cache")

    def sweep():
        return [
            evaluate.compute_explore_point(
                "blowfish", config, cache_root, c.params(), SMALL_SPACE.to_dict()
            )
            for c in SMALL_SPACE.candidates()
        ]

    cold = sweep()
    assert len(cold) == 6
    assert len(calls) == 3  # one per distinct sw_fraction

    warm = sweep()
    assert len(calls) == 3  # memo hits: no further DSWP runs
    assert json.dumps(warm, sort_keys=True) == json.dumps(cold, sort_keys=True)


def test_memoized_points_byte_identical_to_fresh(tmp_path):
    """Memo/stage-cache reuse must not perturb a single objective byte.

    The same candidate list is evaluated three ways: cold (fresh process
    state, populating the caches), memo-warm (same process), and
    stage-cache-warm (memo cleared, points served from disk).  All three
    must serialise identically.
    """
    from repro.config import CompilerConfig
    from repro.explore import evaluate

    config = CompilerConfig()
    cache_root = str(tmp_path / "cache")

    def sweep():
        return json.dumps(
            [
                evaluate.compute_explore_point(
                    "blowfish", config, cache_root, c.params(), SMALL_SPACE.to_dict()
                )
                for c in SMALL_SPACE.candidates()
            ],
            sort_keys=True,
        )

    evaluate._DSWP_MEMO.clear()
    cold = sweep()
    memo_warm = sweep()
    evaluate._DSWP_MEMO.clear()
    disk_warm = sweep()
    assert memo_warm == cold
    assert disk_warm == cold


def test_rebind_partitioning_across_pickle_roundtrip():
    """A DSWPResult unpickled from the stage cache references its own copy
    of the module; ``_rebind_partitioning`` must re-anchor it onto the live
    module's instruction objects, and the rebound partitioning must replay
    byte-identically to the original."""
    import dataclasses
    import pickle

    from repro.dswp import run_dswp
    from repro.explore.evaluate import _rebind_partitioning
    from repro.frontend import compile_c
    from repro.interp import Profile, run_module
    from repro.sim import ThreadAssignment, TimingSimulator
    from repro.transforms import GlobalsToArguments, default_pipeline
    from repro.workloads import get_workload

    module = compile_c(get_workload("blowfish").source, "blowfish")
    default_pipeline().run(module)
    GlobalsToArguments().run(module)
    execution = run_module(module, record_trace=True)
    profile = Profile.from_trace(module, execution.trace)
    dswp = run_dswp(module, profile=profile)

    # The pickle round-trip detaches the partitioning onto a private module copy.
    detached = pickle.loads(pickle.dumps(dswp))
    fp = next(iter(detached.partitioning.functions.values()))
    live = {id(inst) for fn in module.functions.values() for inst in fn.instructions()}
    assert all(id(inst) not in live for p in fp.partitions for inst in p.instructions)

    rebound = _rebind_partitioning(detached, module)
    for fn_name, rebound_fp in rebound.partitioning.functions.items():
        assert rebound_fp.function is module.get_function(fn_name)
        for partition in rebound_fp.partitions:
            for inst in partition.instructions:
                assert id(inst) in live
                assert rebound_fp.assignment[id(inst)] == partition.index

    sim = TimingSimulator()
    original = sim.simulate(
        execution.trace, ThreadAssignment.from_partitioning(module, dswp.partitioning)
    )
    replayed = sim.simulate(
        execution.trace, ThreadAssignment.from_partitioning(module, rebound.partitioning)
    )
    assert dataclasses.asdict(replayed) == dataclasses.asdict(original)

    # Rebinding an already-bound result is a no-op (the memo-hit path).
    assert _rebind_partitioning(rebound, module) is rebound
