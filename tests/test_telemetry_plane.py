"""Tests of the central telemetry plane (PR 10).

Four layers, cheapest first:

* pure-logic tests of the alert rule engine (:mod:`repro.obs.alerts`) and
  of span-batch validation (:mod:`repro.obs.collect`);
* live-socket tests of the standalone collector service and of the
  coordinator's ``POST /spans`` ingestion route — batch caps, auth,
  malformed records, concurrent ``GET /metrics`` scrapes;
* crash-safety: a subprocess shipping spans through a :class:`RemoteSink`
  that self-destructs mid-run must never leave a partial JSONL line in
  the merged sink, and client-side drops must be counted, never raised;
* a TLS round trip against an ``openssl``-minted self-signed certificate
  (skipped when no ``openssl`` binary is available).

The end-to-end distributed version (coordinator + workers + collector +
``repro alerts check`` + dashboard snapshot) lives in
``tools/dash_smoke.py``, mirroring the other smoke drivers.
"""

import json
import os
import shutil
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.eval.remote import protocol
from repro.eval.remote.coordinator import Coordinator, start_coordinator_server
from repro.obs import alerts as obs_alerts
from repro.obs import collect as obs_collect
from repro.obs import tracing as obs_tracing
from repro.obs.dash import DashState, make_dash_server, render_html


def make_record(i=0, trace_id="t" * 32, **extra):
    record = {
        "trace_id": trace_id,
        "span_id": f"{i:016x}",
        "parent_id": None,
        "name": f"task:{i}",
        "kind": "sweep",
        "service": "worker",
        "worker": "w1",
        "start": 100.0 + i,
        "end": 101.0 + i,
        "attrs": {},
    }
    record.update(extra)
    return record


def post_spans(url, spans, headers=None):
    body = json.dumps({"spans": spans}).encode("utf-8")
    request = urllib.request.Request(
        f"{url}/spans",
        data=body,
        method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


@pytest.fixture
def collector(tmp_path):
    server = obs_collect.make_collector_server(tmp_path / "merged.jsonl", port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.sink_writer.close()


# ---------------------------------------------------------------------------
# span-batch validation and ingestion (no sockets)
# ---------------------------------------------------------------------------


def test_validate_record_requires_the_span_fields():
    assert obs_collect.validate_record(make_record())
    assert not obs_collect.validate_record("not a dict")
    assert not obs_collect.validate_record({})
    for missing in obs_collect.REQUIRED_FIELDS:
        bad = make_record()
        del bad[missing]
        assert not obs_collect.validate_record(bad), missing
    assert not obs_collect.validate_record(make_record(trace_id=123))
    assert not obs_collect.validate_record(make_record(start="yesterday"))


def test_ingest_batch_counts_accepted_and_rejected():
    landed = []
    accepted, rejected = obs_collect.ingest_batch(
        {"spans": [make_record(0), {"junk": True}, make_record(1)]}, landed.append
    )
    assert (accepted, rejected) == (2, 1)
    assert [r["span_id"] for r in landed] == [make_record(0)["span_id"],
                                              make_record(1)["span_id"]]
    # A non-list payload is a whole-batch rejection, nothing lands.
    assert obs_collect.ingest_batch({"spans": "nope"}, landed.append) == (0, 0)
    assert len(landed) == 2


def test_batch_too_large_checks_bytes_then_span_count():
    assert obs_collect.batch_too_large(obs_collect.MAX_BATCH_BYTES + 1)
    assert not obs_collect.batch_too_large(10, {"spans": [make_record()]})
    oversized = {"spans": [make_record(i) for i in range(3)]}
    assert not obs_collect.batch_too_large(10, oversized)
    too_many = {"spans": list(range(obs_collect.MAX_BATCH_SPANS + 1))}
    assert obs_collect.batch_too_large(10, too_many)


# ---------------------------------------------------------------------------
# the standalone collector service
# ---------------------------------------------------------------------------


def test_collector_ingests_batches_and_reports_health(collector, tmp_path):
    status, payload = post_spans(collector.url, [make_record(0), make_record(1)])
    assert status == 200 and payload == {"ok": True, "accepted": 2, "rejected": 0}
    status, payload = post_spans(collector.url, [make_record(2), {"junk": 1}])
    assert payload == {"ok": True, "accepted": 1, "rejected": 1}
    lines = (tmp_path / "merged.jsonl").read_text(encoding="utf-8").splitlines()
    assert len(lines) == 3
    assert all(json.loads(line)["trace_id"] == "t" * 32 for line in lines)
    with urllib.request.urlopen(collector.url + "/healthz", timeout=5) as response:
        health = json.loads(response.read())
    assert health["ok"] and health["role"] == "collector"
    assert health["spans_written"] == 3


def test_collector_refuses_oversized_batches(collector):
    too_many = [make_record(i) for i in range(obs_collect.MAX_BATCH_SPANS + 1)]
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post_spans(collector.url, too_many)
    assert excinfo.value.code == 413
    # The keep-alive connection survives the refusal: the next post lands.
    status, payload = post_spans(collector.url, [make_record(0)])
    assert status == 200 and payload["accepted"] == 1


def test_collector_requires_matching_token(tmp_path):
    server = obs_collect.make_collector_server(
        tmp_path / "merged.jsonl", port=0, token="s3cret"
    )
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_spans(server.url, [make_record(0)])
        assert excinfo.value.code == 401
        status, payload = post_spans(
            server.url, [make_record(0)], headers={protocol.TOKEN_HEADER: "s3cret"}
        )
        assert status == 200 and payload["accepted"] == 1
        # /healthz and /metrics stay auth-exempt (liveness probes, scrapers).
        for path in ("/healthz", "/metrics"):
            with urllib.request.urlopen(server.url + path, timeout=5) as response:
                assert response.status == 200
    finally:
        server.shutdown()
        server.server_close()
        server.sink_writer.close()


def test_concurrent_metrics_scrapes_and_ingestion(collector):
    """Satellite: /metrics must stay consistent under concurrent scrapes
    while span batches land in parallel."""
    errors = []
    bodies = []
    lock = threading.Lock()

    def scrape():
        try:
            for _ in range(5):
                with urllib.request.urlopen(collector.url + "/metrics", timeout=10) as r:
                    text = r.read().decode("utf-8")
                assert "repro_collector_spans_received_total" in text
                with lock:
                    bodies.append(text)
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    def ingest(base):
        try:
            for i in range(5):
                post_spans(collector.url, [make_record(base * 100 + i)])
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=scrape) for _ in range(4)]
    threads += [threading.Thread(target=ingest, args=(n,)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    assert len(bodies) == 20
    # Every scrape is a complete, parseable exposition: the counter line is
    # present with a numeric value in each one.
    for body in bodies:
        line = next(
            l for l in body.splitlines()
            if l.startswith("repro_collector_spans_received_total")
        )
        float(line.split()[-1])


# ---------------------------------------------------------------------------
# the coordinator's /spans ingestion route
# ---------------------------------------------------------------------------


def test_coordinator_ingests_spans_into_the_client_tracer(tmp_path):
    obs_tracing.reset()
    obs_tracing.enable(tmp_path / "client.jsonl", service="cli")
    server = start_coordinator_server(Coordinator(), port=0)
    try:
        status, payload = post_spans(server.url, [make_record(0), make_record(1)])
        assert status == 200 and payload["accepted"] == 2
        lines = (tmp_path / "client.jsonl").read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["task:0", "task:1"]
    finally:
        server.shutdown()
        server.server_close()
        obs_tracing.reset()


def test_coordinator_spans_route_is_a_noop_without_a_tracer(tmp_path):
    obs_tracing.reset()  # no $REPRO_TRACE: ingestion accepts and discards
    server = start_coordinator_server(Coordinator(), port=0)
    try:
        status, payload = post_spans(server.url, [make_record(0)])
        assert status == 200 and payload["accepted"] == 1
    finally:
        server.shutdown()
        server.server_close()
        obs_tracing.reset()


# ---------------------------------------------------------------------------
# RemoteSink: bounded queue, counted drops, crash safety
# ---------------------------------------------------------------------------


def test_remote_sink_ships_batches(collector, tmp_path):
    sink = obs_collect.RemoteSink(collector.url, flush_interval=0.05)
    for i in range(7):
        sink.write_record(make_record(i))
    assert sink.flush(timeout=10.0)
    sink.close()
    assert sink.shipped == 7 and sink.dropped == 0
    lines = (tmp_path / "merged.jsonl").read_text(encoding="utf-8").splitlines()
    assert len(lines) == 7


def test_remote_sink_counts_drops_when_collector_unreachable(capsys):
    # A TCP reset port: every POST fails fast, every span becomes a drop.
    sink = obs_collect.RemoteSink(
        "http://127.0.0.1:9", queue_limit=4, flush_interval=0.05, timeout=0.5
    )
    before = obs_collect._SPANS_DROPPED.value()
    for i in range(32):
        sink.write_record(make_record(i))
    sink.close()
    assert sink.shipped == 0
    assert sink.dropped == 32  # queue overflow + failed posts, all counted
    assert obs_collect._SPANS_DROPPED.value() - before == 32
    # The one-line loss report lands on stderr, never stdout.
    captured = capsys.readouterr()
    assert "32 span(s) dropped" in captured.err
    assert captured.out == ""


def test_remote_sink_never_leaves_partial_lines_on_crash(collector, tmp_path):
    """Satellite: a worker dying mid-run (os._exit skips atexit) may lose
    queued spans, but the merged sink must contain only whole JSONL lines."""
    script = tmp_path / "crasher.py"
    script.write_text(
        """
import os, sys
from repro.obs import collect

url = sys.argv[1]
sink = collect.RemoteSink(url, flush_interval=0.01)
big = {"pad": "x" * 512}
for i in range(50):
    sink.write_record({
        "trace_id": "c" * 32, "span_id": "%016x" % i, "parent_id": None,
        "name": "crash:%d" % i, "kind": "sweep", "service": "worker",
        "worker": "w-crash", "start": 1.0 + i, "end": 2.0 + i, "attrs": big,
    })
sink.flush(timeout=10.0)
# Queue more and die hard: these never ship, and nothing may corrupt
# what already landed.
for i in range(50, 80):
    sink.write_record({
        "trace_id": "c" * 32, "span_id": "%016x" % i, "parent_id": None,
        "name": "crash:%d" % i, "kind": "sweep", "service": "worker",
        "worker": "w-crash", "start": 1.0 + i, "end": 2.0 + i, "attrs": big,
    })
os._exit(17)
""",
        encoding="utf-8",
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parents[1] / "src"),
         env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, str(script), collector.url],
        env=env, capture_output=True, timeout=60,
    )
    assert proc.returncode == 17
    raw = (tmp_path / "merged.jsonl").read_text(encoding="utf-8")
    assert raw.endswith("\n")
    lines = raw.splitlines()
    records = [json.loads(line) for line in lines]  # every line parses whole
    assert len(records) >= 50  # everything flushed before the crash landed
    assert all(record["trace_id"] == "c" * 32 for record in records)


def test_tracer_selects_remote_sink_for_http_trace_spec(collector, monkeypatch):
    monkeypatch.setenv(obs_tracing.TRACE_ENV, collector.url)
    obs_tracing.reset()
    try:
        with obs_tracing.span("remote-root", kind="harness"):
            pass
        active = obs_tracing.tracer()
        assert isinstance(active.writer, obs_collect.RemoteSink)
        assert active.sink_spec == collector.url
        assert obs_tracing.sink_spec() == collector.url
        assert active.writer.flush(timeout=10.0)
    finally:
        obs_tracing.reset()


# ---------------------------------------------------------------------------
# TLS (REPRO_SERVICE_TLS_CERT/KEY + client CA)
# ---------------------------------------------------------------------------


def _mint_self_signed(tmp_path):
    openssl = shutil.which("openssl")
    if openssl is None:
        pytest.skip("no openssl binary available to mint a test certificate")
    cert, key = tmp_path / "tls.crt", tmp_path / "tls.key"
    subprocess.run(
        [openssl, "req", "-x509", "-newkey", "rsa:2048", "-nodes",
         "-keyout", str(key), "-out", str(cert), "-days", "1",
         "-subj", "/CN=127.0.0.1",
         "-addext", "subjectAltName=IP:127.0.0.1"],
        check=True, capture_output=True, timeout=60,
    )
    return cert, key


def test_collector_round_trip_over_tls(tmp_path, monkeypatch):
    cert, key = _mint_self_signed(tmp_path)
    monkeypatch.setenv(protocol.TLS_CERT_ENV, str(cert))
    monkeypatch.setenv(protocol.TLS_KEY_ENV, str(key))
    server = obs_collect.make_collector_server(tmp_path / "merged.jsonl", port=0)
    assert server.url.startswith("https://")
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    # The server must not accept plaintext clients once TLS is on.
    monkeypatch.delenv(protocol.TLS_CERT_ENV)
    monkeypatch.delenv(protocol.TLS_KEY_ENV)
    try:
        plain = "http://" + server.url[len("https://"):]
        with pytest.raises(OSError):
            post_spans(plain, [make_record(0)])
        # A client trusting the cert as its CA completes the round trip.
        monkeypatch.setenv(protocol.TLS_CA_ENV, str(cert))
        sink = obs_collect.RemoteSink(server.url, flush_interval=0.05)
        for i in range(3):
            sink.write_record(make_record(i))
        assert sink.flush(timeout=10.0)
        sink.close()
        assert sink.shipped == 3 and sink.dropped == 0
        lines = (tmp_path / "merged.jsonl").read_text(encoding="utf-8").splitlines()
        assert len(lines) == 3
        # An untrusting client is refused (certificate verify failed).
        monkeypatch.delenv(protocol.TLS_CA_ENV)
        body = json.dumps({"spans": [make_record(9)]}).encode("utf-8")
        request = urllib.request.Request(
            f"{server.url}/spans", data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.URLError):
            protocol.urlopen(request, timeout=5)
    finally:
        server.shutdown()
        server.server_close()
        server.sink_writer.close()


# ---------------------------------------------------------------------------
# alert rules
# ---------------------------------------------------------------------------


def healthy_snapshot(**coordinator_extra):
    coordinator = {
        "url": "http://c:1", "ok": True, "queued": 0, "running": 0,
        "workers": 1, "worker_detail": {"w1": {"heartbeat_age_seconds": 1.0}},
    }
    coordinator.update(coordinator_extra)
    return {"coordinator": coordinator}


def test_no_alerts_on_a_healthy_cluster():
    assert obs_alerts.evaluate([healthy_snapshot()]) == []
    assert obs_alerts.render_alerts([]) == "ok: no alerts firing"


def test_coordinator_down_short_circuits_detail_rules():
    snapshot = {"coordinator": {"url": "http://c:1", "ok": False, "error": "boom"}}
    alerts = obs_alerts.evaluate([snapshot])
    assert [a.rule for a in alerts] == ["coordinator-down"]
    assert alerts[0].severity == "critical"


def test_worker_dead_rule_uses_heartbeat_age():
    snapshot = healthy_snapshot(
        worker_detail={"w1": {"heartbeat_age_seconds": 1.0},
                       "w2": {"heartbeat_age_seconds": 99.0}}
    )
    alerts = obs_alerts.evaluate([snapshot])
    assert [a.rule for a in alerts] == ["worker-dead"]
    assert "w2" in alerts[0].message and alerts[0].value == 99.0


def test_queue_sustained_rule_needs_consecutive_samples():
    burst = healthy_snapshot(queued=500)
    # One or two hot samples: bursty, not sustained — no alert.
    assert obs_alerts.evaluate([burst]) == []
    assert obs_alerts.evaluate([healthy_snapshot(), burst, burst]) == []
    alerts = obs_alerts.evaluate([burst, burst, burst])
    assert [a.rule for a in alerts] == ["queue-sustained"]
    assert alerts[0].severity == "warning"


def test_cache_hit_rate_floor_needs_minimum_lookups():
    cold = dict(healthy_snapshot(),
                cache={"url": "http://k:1", "ok": True, "hits": 0,
                       "misses": 5, "hit_rate": 0.0})
    assert obs_alerts.evaluate([cold]) == []  # too few lookups to judge
    busy = dict(healthy_snapshot(),
                cache={"url": "http://k:1", "ok": True, "hits": 0,
                       "misses": 50, "hit_rate": 0.0})
    alerts = obs_alerts.evaluate([busy])
    assert [a.rule for a in alerts] == ["cache-hit-rate"]


def test_history_regression_rule_fires_on_the_ledger():
    runs = [
        {"command": "report", "metrics": {"wall_seconds": 1.0}} for _ in range(6)
    ] + [{"command": "report", "metrics": {"wall_seconds": 9.0}}]
    alerts = obs_alerts.evaluate([healthy_snapshot()], history_runs=runs)
    assert [a.rule for a in alerts] == ["history-regression"]
    assert "wall_seconds" in alerts[0].message


def test_alert_rules_load_rejects_unknown_keys(tmp_path):
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps({"worker_dead_seconds": 5}), encoding="utf-8")
    assert obs_alerts.load_rules(rules_path).worker_dead_seconds == 5
    rules_path.write_text(json.dumps({"worker_ded_seconds": 5}), encoding="utf-8")
    with pytest.raises(ReproError, match="worker_ded_seconds"):
        obs_alerts.load_rules(rules_path)
    assert obs_alerts.load_rules(None) is obs_alerts.DEFAULT_RULES


# ---------------------------------------------------------------------------
# the live dashboard
# ---------------------------------------------------------------------------


def test_dash_serves_html_and_status_json(tmp_path):
    coordinator = start_coordinator_server(Coordinator(), port=0)
    # Isolated history dir: the default is ./.repro_history, and a real
    # ledger in the working directory would leak alerts into this test.
    state = DashState(coordinator.url, refresh=0.0, history_dir=tmp_path)
    server = make_dash_server(state, port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        with urllib.request.urlopen(server.url + "/status.json", timeout=10) as r:
            payload = json.loads(r.read())
        assert payload["snapshot"]["coordinator"]["ok"] is True
        assert payload["alerts"] == []
        assert set(payload["series"]) >= {"queue_depth", "throughput_per_s"}
        with urllib.request.urlopen(server.url + "/", timeout=10) as r:
            page = r.read().decode("utf-8")
        assert "repro cluster dashboard" in page
        assert 'http-equiv="refresh"' in page  # live page auto-refreshes
    finally:
        server.shutdown()
        server.server_close()
        coordinator.shutdown()
        coordinator.server_close()


def test_dash_degrades_and_alerts_when_coordinator_is_down(tmp_path):
    state = DashState("http://127.0.0.1:9", refresh=0.0, timeout=0.5,
                      history_dir=tmp_path)
    state.poll(force=True)
    payload = state.status_payload()
    assert payload["snapshot"]["coordinator"]["ok"] is False
    assert [a["rule"] for a in payload["alerts"]] == ["coordinator-down"]
    page = render_html(state)
    assert "coordinator-down" in page
