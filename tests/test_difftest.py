"""Differential tests: interpreter vs timing-replay output agreement.

The tier-1 guarantee of the ingestion PR: for every builtin workload, the
functional interpreter and the timing simulation agree on the observable
output stream under the software-only, hybrid, and hardware-heavy hardware
configurations, every trace event is replayed exactly once, and no event
ever needs force-execution.  The fuzzed corpus programs get the same
treatment through the ingestion path.
"""

import pytest

from repro.eval import EvaluationHarness
from repro.ingest import difftest_all, difftest_workload, load_corpus
from repro.ingest.difftest import CONFIGS
from repro.workloads import all_workloads
from repro.workloads.base import WorkloadRegistry

BUILTINS = ("adpcm", "aes", "blowfish", "gsm", "jpeg", "mips", "mpeg2", "sha")
CONFIG_LABELS = tuple(label for label, _ in CONFIGS)


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    return EvaluationHarness(cache_dir=str(tmp_path_factory.mktemp("difftest-cache")))


@pytest.fixture(scope="module")
def outcomes(harness):
    """One compile per builtin, shared by every parameterized assertion."""
    return {o.workload: o for o in difftest_all(harness, BUILTINS)}


def test_covers_all_builtins():
    assert tuple(sorted(w.name for w in all_workloads() if w.origin == "builtin")) == BUILTINS


@pytest.mark.parametrize("name", BUILTINS)
def test_builtin_outcome_is_clean(outcomes, name):
    outcome = outcomes[name]
    assert outcome.ok, outcome.failures
    assert outcome.origin == "builtin"
    assert outcome.events > 0
    assert outcome.outputs > 0


@pytest.mark.parametrize("name", BUILTINS)
@pytest.mark.parametrize("label", CONFIG_LABELS)
def test_builtin_agrees_under_config(outcomes, name, label):
    assert outcomes[name].configs[label] is True


def test_outcome_dict_shape(outcomes):
    payload = outcomes["blowfish"].to_dict()
    assert payload["workload"] == "blowfish"
    assert set(payload["configs"]) == set(CONFIG_LABELS)
    assert payload["failures"] == []


def test_replay_stream_matches_interpreter_exactly(harness):
    """Spot-check the raw invariant behind the difftest verdicts."""
    run = harness.run("sha")
    interp = [int(v) for v in run.result.execution.outputs]
    for _, attr in CONFIGS:
        timing = getattr(run.result.system, attr).timing
        assert list(timing.replay_outputs) == interp
        assert timing.forced_events == 0
        assert timing.events == len(run.result.execution.trace.events)


def test_corpus_programs_difftest_clean(harness):
    before = set(WorkloadRegistry.names())
    reports = load_corpus("tests/corpus", harness=harness)
    try:
        assert len(reports) >= 4
        for report in reports:
            outcome = difftest_workload(harness, report.name)
            assert outcome.ok, outcome.failures
            assert outcome.origin == "ingested"
    finally:
        for name in set(WorkloadRegistry.names()) - before:
            WorkloadRegistry.unregister(name)
