"""Smoke tests of the ``repro`` CLI.

In-process tests call :func:`repro.cli.main` directly (fast, easy to assert
on); one subprocess test per entry point (``python -m repro.cli`` and
``python -m repro``) proves the executable wiring works end to end.  All
tests pin ``--cache-dir`` to a temp directory and use the cheapest workload
(blowfish) so the whole module runs in a few seconds.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import build_parser, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_cli(argv, tmp_path, capsys):
    code = main(list(argv) + ["--cache-dir", str(tmp_path / "cache")])
    out, err = capsys.readouterr()
    return code, out, err


# ---------------------------------------------------------------------------
# in-process
# ---------------------------------------------------------------------------


def test_list(tmp_path, capsys):
    code, out, _ = run_cli(["list"], tmp_path, capsys)
    assert code == 0
    for name in ("adpcm", "aes", "blowfish", "gsm", "jpeg", "mips", "mpeg2", "sha"):
        assert name in out


def test_run_text_report(tmp_path, capsys):
    code, out, _ = run_cli(["run", "blowfish"], tmp_path, capsys)
    assert code == 0
    assert "benchmark             : blowfish" in out
    assert "speedup vs pure SW" in out


def test_run_json(tmp_path, capsys):
    code, out, _ = run_cli(["run", "blowfish", "--json"], tmp_path, capsys)
    assert code == 0
    payload = json.loads(out)
    assert payload["benchmark"] == "blowfish"
    assert payload["outputs_match"] is True
    assert payload["queues"] >= 1
    assert payload["speedup_vs_sw"] > 1.0


def test_run_unknown_workload_fails_cleanly(tmp_path, capsys):
    code, out, err = run_cli(["run", "nosuchkernel"], tmp_path, capsys)
    assert code == 2
    assert "unknown workload" in err
    assert "blowfish" in err  # suggests the known names


def test_run_sw_fraction(tmp_path, capsys):
    code, out, _ = run_cli(["run", "blowfish", "--sw-fraction", "0.5", "--json"], tmp_path, capsys)
    assert code == 0
    payload = json.loads(out)
    assert payload["sw_fraction"] == 0.5
    assert payload["cycles"] > 0


def test_table_6_1(tmp_path, capsys):
    code, out, _ = run_cli(["table", "6.1", "--benchmarks", "blowfish"], tmp_path, capsys)
    assert code == 0
    assert "Table 6.1" in out
    assert "blowfish" in out


def test_figure_split_sweep(tmp_path, capsys):
    code, out, _ = run_cli(["sweep", "split", "--workload", "blowfish"], tmp_path, capsys)
    assert code == 0
    assert "blowfish performance vs targeted partition split point" in out


def test_split_artefacts_reject_conflicting_benchmarks(tmp_path, capsys):
    # Figure 6.3 is defined over mips; restricting to another workload must
    # fail loudly instead of silently producing the mips figure.
    code, _, err = run_cli(["figure", "6.3", "--benchmarks", "gsm"], tmp_path, capsys)
    assert code == 2
    assert "mips" in err
    code, _, err = run_cli(["sweep", "split", "--workload", "sha", "--benchmarks", "gsm"], tmp_path, capsys)
    assert code == 2
    assert "sha" in err
    # A consistent restriction is fine.
    code, out, _ = run_cli(["figure", "6.4", "--benchmarks", "blowfish"], tmp_path, capsys)
    assert code == 0
    assert "blowfish" in out


def test_invalid_sw_fraction_fails_cleanly(tmp_path, capsys):
    code, _, err = run_cli(["run", "blowfish", "--sw-fraction", "1.5"], tmp_path, capsys)
    assert code == 2
    assert "sw_fraction" in err
    assert "Traceback" not in err


def test_report_json(tmp_path, capsys):
    code, out, _ = run_cli(["report", "--json", "--benchmarks", "blowfish"], tmp_path, capsys)
    assert code == 0
    payload = json.loads(out)
    assert payload["benchmarks"] == ["blowfish"]
    assert "config" in payload
    artefacts = payload["artefacts"]
    # Tables, non-split figures and the summary are always present; the
    # split-sweep figures are skipped because their workloads (mips for 6.3)
    # are outside the restricted benchmark set.
    for key in ("table_6.1", "table_6.2", "figure_6.1", "figure_6.2", "figure_6.5", "figure_6.6", "summary"):
        assert key in artefacts
    assert "figure_6.3" not in artefacts
    assert artefacts["summary"]["mean_speedup_vs_sw"] > 1.0


def test_report_markdown(tmp_path, capsys):
    code, out, _ = run_cli(["report", "--markdown", "--benchmarks", "blowfish"], tmp_path, capsys)
    assert code == 0
    assert "### Table 6.1" in out
    assert "| benchmark |" in out


def test_cache_stats_and_clear(tmp_path, capsys):
    run_cli(["run", "blowfish"], tmp_path, capsys)
    code, out, _ = run_cli(["cache", "stats", "--json"], tmp_path, capsys)
    assert code == 0
    assert json.loads(out)["entries"] == 1
    code, out, _ = run_cli(["cache", "clear"], tmp_path, capsys)
    assert code == 0
    assert "removed 1 cache entries" in out


def test_second_invocation_hits_the_cache(tmp_path, capsys):
    run_cli(["run", "blowfish", "--json"], tmp_path, capsys)
    # Same cache dir, fresh harness: must succeed purely from disk.
    code, out, _ = run_cli(["run", "blowfish", "--json"], tmp_path, capsys)
    assert code == 0
    assert json.loads(out)["outputs_match"] is True
    code, out, _ = run_cli(["cache", "stats", "--json"], tmp_path, capsys)
    assert json.loads(out)["entries"] == 1  # no duplicate entry was written


def test_graph_lists_sweep_points_without_executing(tmp_path, capsys):
    code, out, _ = run_cli(["graph", "--benchmarks", "blowfish"], tmp_path, capsys)
    assert code == 0
    assert "compile:blowfish" in out
    assert "sweep:latency:blowfish:128" in out
    assert "sweep:split:blowfish:0.75" in out
    assert "figure:6.6" in out
    # Pure inspection: nothing was compiled or cached.
    assert not (tmp_path / "cache").exists()


def test_graph_json_counts(tmp_path, capsys):
    code, out, _ = run_cli(["graph", "--json", "--benchmarks", "blowfish"], tmp_path, capsys)
    assert code == 0
    payload = json.loads(out)
    counts = payload["counts"]
    # One compile plus one node per sweep point (4 latencies, 3 depths,
    # 6 split points for the blowfish split figure).
    assert counts["compile"] == 1
    assert counts["runtime"] == 7
    assert counts["split"] == 6
    assert all(t["deps"] == ["compile:blowfish"] for t in payload["tasks"] if t["kind"] != "compile" and t["kind"] != "aggregate")


def test_cache_prune(tmp_path, capsys):
    run_cli(["run", "blowfish"], tmp_path, capsys)
    code, out, _ = run_cli(["cache", "prune", "--max-bytes", "0", "--json"], tmp_path, capsys)
    assert code == 0
    summary = json.loads(out)
    assert summary["removed_entries"] == 1
    assert summary["remaining_entries"] == 0
    code, _, err = run_cli(["cache", "prune"], tmp_path, capsys)
    assert code == 2
    assert "--max-bytes" in err
    code, _, err = run_cli(["cache", "prune", "--max-bytes", "1.5X"], tmp_path, capsys)
    assert code == 2
    assert "invalid size" in err


def test_jobs_alias_for_parallel(tmp_path, capsys):
    code, out, _ = run_cli(
        ["table", "6.1", "--benchmarks", "blowfish", "--jobs", "2"], tmp_path, capsys
    )
    assert code == 0
    assert "Table 6.1" in out


def test_report_trace_writes_chrome_tracing_json(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code, out, _ = run_cli(
        ["report", "--benchmarks", "blowfish", "--trace", str(trace_path)], tmp_path, capsys
    )
    assert code == 0
    document = json.loads(trace_path.read_text())
    names = [e["name"] for e in document["traceEvents"] if e.get("ph") == "X"]
    assert "compile:blowfish" in names
    assert "summary:6.7" in names  # aggregates are traced too
    assert any("sweep:" in n for n in names)
    # Stdout stayed pure report output (trace status goes to stderr).
    assert "Table 6.1" in out and "trace" not in out


def test_report_workers_rejects_no_cache(tmp_path, capsys):
    code, _, err = run_cli(
        ["report", "--workers", "127.0.0.1:0", "--no-cache"], tmp_path, capsys
    )
    assert code == 2
    assert "--workers" in err and "cache" in err


def test_report_workers_rejects_malformed_address(tmp_path, capsys):
    code, _, err = run_cli(["report", "--workers", "nonsense"], tmp_path, capsys)
    assert code == 2
    assert "invalid --workers address" in err


def test_explore_json_is_deterministic_and_warm(tmp_path, capsys):
    argv = ["explore", "blowfish", "--strategy", "annealing", "--budget", "4",
            "--seed", "7", "--json"]
    code, cold_out, cold_err = run_cli(argv, tmp_path, capsys)
    assert code == 0
    payload = json.loads(cold_out)
    assert payload["workload"] == "blowfish"
    assert payload["strategy"] == "annealing"
    assert payload["frontier"] and payload["best"]["params"]
    assert len(payload["evaluations"]) <= 4
    assert "explored blowfish" in cold_err  # effort stays on stderr
    # Same cache dir: byte-identical stdout, nothing re-executed.
    code, warm_out, warm_err = run_cli(argv, tmp_path, capsys)
    assert code == 0
    assert warm_out == cold_out
    assert "0 executed" in warm_err


def test_explore_text_output_and_benchmark_guard(tmp_path, capsys):
    code, out, _ = run_cli(
        ["explore", "blowfish", "--strategy", "exhaustive", "--budget", "3"],
        tmp_path, capsys,
    )
    assert code == 0
    assert "Pareto frontier" in out and "best found:" in out
    code, _, err = run_cli(
        ["explore", "mips", "--benchmarks", "blowfish", "--budget", "2"], tmp_path, capsys
    )
    assert code == 2
    assert "not in --benchmarks" in err


def test_explore_rejects_unknown_workload_and_bad_budget(tmp_path, capsys):
    code, _, err = run_cli(["explore", "ghost"], tmp_path, capsys)
    assert code == 2 and "Traceback" not in err
    code, _, err = run_cli(["explore", "blowfish", "--budget", "0"], tmp_path, capsys)
    assert code == 2
    assert "budget" in err


def test_report_compare_detects_changes_and_all_clear(tmp_path, capsys):
    code, baseline_json, _ = run_cli(
        ["report", "--json", "--benchmarks", "blowfish"], tmp_path, capsys
    )
    assert code == 0
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(baseline_json, encoding="utf-8")
    # Same configuration: every artefact matches.
    code, out, _ = run_cli(
        ["report", "--compare", str(baseline_path), "--benchmarks", "blowfish"],
        tmp_path, capsys,
    )
    assert code == 0
    assert "all" in out and "match the baseline" in out
    # Tamper with one cell: the diff names the artefact, row and column.
    doctored = json.loads(baseline_json)
    doctored["artefacts"]["table_6.1"]["rows"][0]["queues"] += 1
    baseline_path.write_text(json.dumps(doctored), encoding="utf-8")
    code, out, _ = run_cli(
        ["report", "--compare", str(baseline_path), "--benchmarks", "blowfish"],
        tmp_path, capsys,
    )
    assert code == 0
    assert "table_6.1 (changed)" in out
    assert "queues" in out and "blowfish" in out
    # JSON mode emits the structured diff.
    code, out, _ = run_cli(
        ["report", "--compare", str(baseline_path), "--json", "--benchmarks", "blowfish"],
        tmp_path, capsys,
    )
    assert code == 0
    diff = json.loads(out)
    assert diff["changed"] == ["table_6.1"]
    assert diff["cells"][0]["column"] == "queues"
    assert diff["cells"][0]["delta"] == -1


def test_report_compare_rejects_bad_baselines(tmp_path, capsys):
    code, _, err = run_cli(
        ["report", "--compare", str(tmp_path / "missing.json")], tmp_path, capsys
    )
    assert code == 2
    assert "cannot read baseline" in err and "Traceback" not in err
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    code, _, err = run_cli(["report", "--compare", str(bad)], tmp_path, capsys)
    assert code == 2
    assert "not valid JSON" in err
    code, _, err = run_cli(
        ["report", "--compare", str(bad), "--html", str(tmp_path / "out")], tmp_path, capsys
    )
    assert code == 2
    assert "--html" in err


def test_parser_covers_all_documented_subcommands():
    parser = build_parser()
    actions = [a for a in parser._actions if hasattr(a, "choices") and a.choices]
    subcommands = set(actions[0].choices)
    assert {"list", "run", "sweep", "table", "figure", "report", "graph", "cache",
            "worker", "explore"} <= subcommands


def test_cache_and_worker_serve_actions_are_wired():
    parser = build_parser()
    args = parser.parse_args(["cache", "serve", "--port", "0"])
    assert args.action == "serve" and args.port == 0
    args = parser.parse_args(["worker", "serve", "--coordinator", "http://h:1", "--max-tasks", "3"])
    assert args.action == "serve" and args.coordinator == "http://h:1" and args.max_tasks == 3


def test_cli_and_report_artefact_registries_stay_in_sync():
    """`repro table/figure` (cli.TABLES/FIGURES) and `repro report/graph`
    (experiments.ARTEFACT_DECLARERS) must cover exactly the same artefacts —
    adding one without the other would silently drop it from the report."""
    from repro import cli
    from repro.eval import experiments

    expected = (
        {f"table_{table_id}" for table_id in cli.TABLES}
        | {f"figure_{figure_id}" for figure_id in cli.FIGURES}
        | {"summary", "exploration"}
    )
    assert set(experiments.ARTEFACT_DECLARERS) == expected


# ---------------------------------------------------------------------------
# subprocess entry points
# ---------------------------------------------------------------------------


def _subprocess_env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.mark.parametrize("module", ["repro.cli", "repro"])
def test_subprocess_entry_points(module, tmp_path):
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            module,
            "run",
            "blowfish",
            "--json",
            "--cache-dir",
            str(tmp_path / "cache"),
        ],
        capture_output=True,
        text=True,
        env=_subprocess_env(),
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["benchmark"] == "blowfish"
    assert payload["outputs_match"] is True


def test_subprocess_report_json(tmp_path):
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "report",
            "--json",
            "--benchmarks",
            "blowfish",
            "--parallel",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
        ],
        capture_output=True,
        text=True,
        env=_subprocess_env(),
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["benchmarks"] == ["blowfish"]
    assert "summary" in payload["artefacts"]
