"""Golden tests of panic-mode error recovery and ``file:line:col`` diagnostics.

Each malformed program pins the exact rendered diagnostic strings so a
regression in positions, messages, or recovery sync points shows up as a
readable diff.  Also checks that recovery keeps parsing (multiple errors per
file, valid functions retained in the partial AST) and that the default
non-recovering mode still raises exactly as before.
"""

import pytest

from repro.errors import FrontendError, ParseError
from repro.frontend import Diagnostic, parse_with_diagnostics
from repro.frontend.diagnostics import MAX_DIAGNOSTICS
from repro.frontend.lexer import tokenize
from repro.frontend.parser import Parser


def diags(source):
    unit, diagnostics = parse_with_diagnostics(source, "bad.c")
    return unit, [d.format() for d in diagnostics]


# ---------------------------------------------------------------------------
# golden messages
# ---------------------------------------------------------------------------


def test_missing_semicolon():
    unit, messages = diags(
        "int main(void) {\n"
        "  int x = 1\n"
        "  int y = 2;\n"
        "  print_int(x + y);\n"
        "  return 0;\n"
        "}\n"
    )
    assert messages == ["bad.c:3:3: error: expected ';', found 'int'"]
    assert len(unit.functions) == 1


def test_empty_initializer_expression():
    unit, messages = diags("int main(void) {\n  int x = ;\n  return 0;\n}\n")
    assert messages == ["bad.c:2:11: error: unexpected token ';' in expression"]
    assert unit is not None


def test_unterminated_compound():
    _, messages = diags("int main(void) {\n  int x = 1;\n")
    assert messages == ["bad.c:1:16: error: unterminated compound statement"]


def test_unclosed_call_parenthesis():
    _, messages = diags("int main(void) {\n  print_int((1 + 2);\n  return 0;\n}\n")
    assert messages == ["bad.c:2:20: error: expected ')', found ';'"]


def test_unsupported_float_global():
    unit, messages = diags("int main(void) { return 0; }\nfloat q;\nint g;\n")
    assert messages == ["bad.c:2:1: error: floating point is not supported"]
    # Recovery resumes at top level: main survives and so does the later global.
    assert [f.name for f in unit.functions] == ["main"]
    assert any(g.name == "g" for g in unit.globals)


def test_multi_error_recovery():
    unit, messages = diags(
        "int main(void) {\n"
        "  int x = ;\n"
        "  int y = 2;\n"
        "  y = y +;\n"
        "  print_int(y)\n"
        "  return 0;\n"
        "}\n"
    )
    assert messages == [
        "bad.c:2:11: error: unexpected token ';' in expression",
        "bad.c:4:10: error: unexpected token ';' in expression",
        "bad.c:6:3: error: expected ';', found 'return'",
    ]
    assert len(unit.functions) == 1


def test_error_inside_one_function_keeps_the_next():
    unit, messages = diags(
        "int f(void) {\n  return 1 +;\n}\nint g(void) {\n  return 2;\n}\n"
    )
    assert messages == ["bad.c:2:13: error: unexpected token ';' in expression"]
    assert [f.name for f in unit.functions] == ["f", "g"]


def test_lexer_failure_becomes_a_diagnostic():
    unit, diagnostics = parse_with_diagnostics("int main(void) { return 0 @ 1; }\n", "bad.c")
    assert unit is None
    assert len(diagnostics) == 1
    assert diagnostics[0].file == "bad.c"
    assert "error" in diagnostics[0].format()


# ---------------------------------------------------------------------------
# recovery mechanics
# ---------------------------------------------------------------------------


def test_diagnostic_count_is_capped():
    body = "".join("  int x%d = ;\n" % i for i in range(MAX_DIAGNOSTICS + 10))
    _, diagnostics = parse_with_diagnostics("int main(void) {\n%s}\n" % body, "bad.c")
    assert len(diagnostics) == MAX_DIAGNOSTICS


def test_diagnostic_roundtrip_and_ordering():
    _, diagnostics = parse_with_diagnostics("int main(void) {\n  int x = ;\n}\n", "bad.c")
    d = diagnostics[0]
    assert Diagnostic.from_dict(d.to_dict()) == d
    assert (d.file, d.line, d.col, d.severity) == ("bad.c", 2, 11, "error")


def test_clean_program_has_no_diagnostics():
    unit, diagnostics = parse_with_diagnostics(
        "int main(void) {\n  print_int(7);\n  return 0;\n}\n"
    )
    assert diagnostics == []
    assert len(unit.functions) == 1


def test_non_recover_mode_still_raises():
    tokens = tokenize("int main(void) {\n  int x = ;\n  return 0;\n}\n")
    with pytest.raises(ParseError) as excinfo:
        Parser(tokens).parse_translation_unit()
    assert excinfo.value.line == 2
    assert isinstance(excinfo.value, FrontendError)
