"""Tests for the functional interpreter, trace, profile, PDG and weights."""

import pytest

from repro.errors import InterpreterTrap
from repro.frontend import compile_c
from repro.interp import Interpreter, Profile, run_module
from repro.interp.memory import SimulatedMemory
from repro.ir import I32, ArrayType, IntType, Opcode
from repro.pdg import WeightModel, build_pdg, condense
from repro.pdg.graph import DependenceKind
from repro.pdg.scc import component_of_map, topological_order
from repro.transforms import default_pipeline
from tests.conftest import PIPELINE_PROGRAM


class TestMemory:
    def test_global_layout_and_initializers(self):
        module = compile_c("int a = 5; int t[4] = {1,2,3,4}; int main(void){ return a + t[2]; }")
        memory = SimulatedMemory()
        memory.load_globals(module)
        assert memory.dump_global(module.get_global("a")) == [5]
        assert memory.dump_global(module.get_global("t")) == [1, 2, 3, 4]

    def test_typed_store_load_round_trip(self):
        memory = SimulatedMemory()
        memory.store_typed(0x2000, -123, I32)
        assert memory.load_typed(0x2000, I32) == -123
        u8 = IntType(8, signed=False)
        memory.store_typed(0x3000, 300, u8)
        assert memory.load_typed(0x3000, u8) == 44

    def test_invalid_address_traps(self):
        memory = SimulatedMemory()
        with pytest.raises(InterpreterTrap):
            memory.load_int(0, 4, True)


class TestInterpreter:
    def test_outputs_and_return(self, optimized_small_module):
        result = run_module(optimized_small_module)
        expected = sum(i * 3 - 7 for i in range(32))
        assert result.outputs == [expected]
        assert result.return_value == expected

    def test_trace_has_precise_dependences(self, pipeline_module):
        result = run_module(pipeline_module, record_trace=True)
        trace = result.trace
        assert trace is not None and len(trace) == result.steps
        # Every dependence points backwards in time.
        for event in trace:
            for dep in event.deps:
                assert dep < event.seq
            if event.mem_dep is not None:
                assert event.mem_dep < event.seq
        # Load events know which store produced their value.
        loads = [e for e in trace if e.opcode is Opcode.LOAD and e.mem_dep is not None]
        assert loads, "expected at least one load with a resolved memory dependence"
        for load in loads[:50]:
            store = trace.events[load.mem_dep]
            assert store.opcode is Opcode.STORE
            assert store.address == load.address

    def test_division_by_zero_traps(self):
        module = compile_c("int main(void) { int z = 0; return 5 / z; }")
        with pytest.raises(InterpreterTrap):
            run_module(module)

    def test_step_limit_enforced(self):
        module = compile_c("int main(void) { while (1) { } return 0; }")
        from repro.errors import InterpreterError

        with pytest.raises(InterpreterError):
            run_module(module, max_steps=1000)

    def test_output_checksum_is_order_sensitive(self):
        m1 = compile_c("int main(void){ print_int(1); print_int(2); return 0; }")
        m2 = compile_c("int main(void){ print_int(2); print_int(1); return 0; }")
        assert run_module(m1).output_checksum != run_module(m2).output_checksum


class TestProfile:
    def test_profile_from_trace_counts_loop_body_more(self, pipeline_module):
        result = run_module(pipeline_module, record_trace=True)
        profile = Profile.from_trace(pipeline_module, result.trace)
        fn = pipeline_module.get_function("main")
        counts = [profile.count(i) for i in fn.instructions()]
        assert max(counts) >= 48  # loop body instructions execute once per iteration
        assert min(counts) >= 0

    def test_static_estimate_scales_with_loop_depth(self):
        module = compile_c(
            "int main(void){ int i; int j; int s=0; for(i=0;i<4;i++){ for(j=0;j<4;j++){ s+=i*j; } } return s; }"
        )
        default_pipeline().run(module)
        profile = Profile.static_estimate(module)
        fn = module.get_function("main")
        counts = {profile.count(i) for i in fn.instructions()}
        assert len(counts) >= 2  # at least two distinct nesting levels


class TestPDG:
    def test_data_edges_follow_ssa(self, pipeline_module):
        fn = pipeline_module.get_function("main")
        pdg = build_pdg(fn)
        assert pdg.edge_count(DependenceKind.DATA) > 0
        for edge in pdg.edges:
            if edge.kind is DependenceKind.DATA:
                assert edge.tail in edge.head.operands

    def test_control_edges_from_branches(self, pipeline_module):
        fn = pipeline_module.get_function("main")
        pdg = build_pdg(fn)
        control = [e for e in pdg.edges if e.kind is DependenceKind.CONTROL]
        assert control
        for edge in control:
            assert edge.tail.opcode in (Opcode.CONDBR, Opcode.SWITCH)

    def test_scc_condensation_is_acyclic(self, pipeline_module):
        fn = pipeline_module.get_function("main")
        pdg = build_pdg(fn)
        components = condense(pdg)
        order = topological_order(components)
        assert sorted(order) == sorted(c.index for c in components)
        position = {idx: i for i, idx in enumerate(order)}
        for scc in components:
            for succ in scc.successors:
                assert position[scc.index] < position[succ]

    def test_every_instruction_in_exactly_one_scc(self, pipeline_module):
        fn = pipeline_module.get_function("main")
        pdg = build_pdg(fn)
        components = condense(pdg)
        mapping = component_of_map(components)
        instructions = list(fn.instructions())
        assert len(mapping) == len(instructions)

    def test_loop_carried_scc_exists(self, pipeline_module):
        fn = pipeline_module.get_function("main")
        components = condense(build_pdg(fn))
        assert any(scc.is_cyclic() for scc in components)

    def test_weight_model_hw_vs_sw(self, pipeline_module):
        result = run_module(pipeline_module, record_trace=True)
        profile = Profile.from_trace(pipeline_module, result.trace)
        wm = WeightModel(profile)
        fn = pipeline_module.get_function("main")
        div_like = [i for i in fn.instructions() if i.opcode in (Opcode.SREM, Opcode.UREM, Opcode.SDIV)]
        adds = [i for i in fn.instructions() if i.opcode is Opcode.ADD]
        assert div_like and adds
        assert wm.weights(div_like[0]).sw_cycles > wm.weights(adds[0]).sw_cycles
        assert wm.weights(div_like[0]).hw_luts > wm.weights(adds[0]).hw_luts
