"""Tests of the distributed execution subsystem (`repro.eval.remote`).

Three layers, cheapest first:

* pure-logic tests of the :class:`Coordinator` state machine (lease,
  heartbeat, expiry-reassignment, retry cap) and the wire protocol;
* live-socket tests of the HTTP cache service (round trip, server-side
  single-flight) and of a real worker loop driving a
  :class:`RemoteExecutor`-backed scheduler — all in-process with fake
  (cheap) payload functions, no workload compiles;
* one subprocess end-to-end smoke (``tools/distributed_smoke.py``): cache
  server + two workers + ``repro report --workers`` with crash injection,
  asserting byte-identical output to a cold serial run.
"""

import json
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.errors import RemoteProtocolError, RemoteTaskError, ReproError
from repro.config import CompilerConfig, RuntimeConfig
from repro.eval.cache import ArtifactCache, LocalFSBackend, sign_envelope
from repro.eval.remote import protocol
from repro.eval.remote.cache_http import HTTPCacheBackend, make_cache_server
from repro.eval.remote.coordinator import Coordinator
from repro.eval.remote.executor import RemoteExecutor
from repro.eval.remote.worker import run_worker
from repro.eval.taskgraph import Task, TaskGraph, TaskScheduler, aggregate_task
from repro.eval.trace import TraceRecorder


def make_spec(task_id="sweep:fake", attempt=None):
    spec = {
        "task_id": task_id,
        "kind": "runtime",
        "fn": "compute_runtime_point",
        "args": [],
        "key": "f" * 64,
        "serializer": "json",
    }
    if attempt is not None:
        spec["attempt"] = attempt
    return spec


# ---------------------------------------------------------------------------
# coordinator state machine (fake workers, no HTTP, no compiles)
# ---------------------------------------------------------------------------


def test_lease_and_complete_round_trip():
    coordinator = Coordinator(lease_timeout=5.0)
    registration = coordinator.register()
    worker = registration["worker_id"]
    assert registration["lease_timeout"] == 5.0
    coordinator.submit(make_spec())
    response = coordinator.lease(worker, wait=0.1)
    assert response["task"]["task_id"] == "sweep:fake"
    assert response["task"]["attempt"] == 1
    # Nothing else queued: an immediate second lease long-polls to empty.
    assert coordinator.lease(worker, wait=0.05)["task"] is None
    coordinator.complete(worker, "sweep:fake", ok=True, value=42.0)
    [completion] = coordinator.wait_completions(timeout=1.0)
    assert completion["value"] == 42.0
    assert completion["error"] is None
    assert coordinator.inflight == 0


def test_dead_worker_lease_expires_and_task_is_reassigned():
    coordinator = Coordinator(lease_timeout=0.15)
    dead = coordinator.register(name="doomed")["worker_id"]
    survivor = coordinator.register(name="survivor")["worker_id"]
    coordinator.submit(make_spec())
    assert coordinator.lease(dead, wait=0.05)["task"] is not None
    # `dead` never heartbeats; after the lease timeout the survivor gets the
    # same task with the attempt counter bumped.
    time.sleep(0.2)
    response = coordinator.lease(survivor, wait=1.0)
    assert response["task"]["task_id"] == "sweep:fake"
    assert response["task"]["attempt"] == 2
    # The late completion from the presumed-dead worker is dropped...
    assert coordinator.complete(dead, "sweep:fake", ok=True, value=1.0) == {"accepted": False}
    assert coordinator.wait_completions(timeout=0.05) == []
    # ...while the survivor's goes through.
    assert coordinator.complete(survivor, "sweep:fake", ok=True, value=2.0)["accepted"]
    [completion] = coordinator.wait_completions(timeout=1.0)
    assert completion["value"] == 2.0 and completion["worker_id"] == survivor


def test_heartbeat_renews_leases():
    coordinator = Coordinator(lease_timeout=0.3)
    worker = coordinator.register()["worker_id"]
    coordinator.submit(make_spec())
    assert coordinator.lease(worker, wait=0.05)["task"] is not None
    for _ in range(3):  # keep renewing well past the original deadline
        time.sleep(0.15)
        assert coordinator.heartbeat(worker) == {"shutdown": False}
    assert coordinator.wait_completions(timeout=0.05) == []  # never reaped
    coordinator.complete(worker, "sweep:fake", ok=True, value=7)
    assert coordinator.wait_completions(timeout=1.0)[0]["value"] == 7


def test_heartbeat_only_renews_listed_tasks():
    """A finished task whose completion notice was lost must not be kept
    alive by the worker's heartbeats — it has to expire and be reassigned."""
    coordinator = Coordinator(lease_timeout=0.2)
    worker = coordinator.register()["worker_id"]
    survivor = coordinator.register()["worker_id"]
    coordinator.submit(make_spec())
    assert coordinator.lease(worker, wait=0.05)["task"] is not None
    # The worker finished the task (its result is in the cache) but the
    # complete POST was lost; it now heartbeats with an empty active list.
    deadline = time.time() + 1.0
    reassigned = None
    while time.time() < deadline:
        coordinator.heartbeat(worker, tasks=[])
        reassigned = coordinator.lease(survivor, wait=0.05)["task"]
        if reassigned:
            break
    assert reassigned and reassigned["attempt"] == 2  # lease expired despite heartbeats


def test_retry_cap_fails_the_task():
    coordinator = Coordinator(lease_timeout=0.05, max_attempts=2)
    coordinator.submit(make_spec())
    for expected_attempt in (1, 2):
        worker = coordinator.register()["worker_id"]
        response = coordinator.lease(worker, wait=1.0)
        assert response["task"]["attempt"] == expected_attempt
        time.sleep(0.1)  # abandon the lease
    [completion] = coordinator.wait_completions(timeout=2.0)
    assert "giving up" in completion["error"]


def test_silent_workers_are_pruned_and_names_freed():
    coordinator = Coordinator(lease_timeout=0.1)
    worker = coordinator.register(name="stable")["worker_id"]
    assert worker == "stable"
    assert coordinator.worker_count == 1
    time.sleep(0.15)  # no heartbeat, no poll: the worker is presumed dead
    assert coordinator.wait_completions(timeout=0.01) == []  # drives the reaper
    # worker_count is honest again (the executor's no-live-worker watchdog
    # relies on this to fail instead of hanging when every worker died)...
    assert coordinator.worker_count == 0
    # ...and a restarted worker gets its stable --name back, not a suffix.
    assert coordinator.register(name="stable")["worker_id"] == "stable"


def test_shutdown_tells_workers_to_exit():
    coordinator = Coordinator()
    worker = coordinator.register()["worker_id"]
    coordinator.submit(make_spec())
    coordinator.shutdown()
    response = coordinator.lease(worker, wait=0.05)
    assert response == {"task": None, "shutdown": True}
    assert coordinator.heartbeat(worker)["shutdown"] is True


# ---------------------------------------------------------------------------
# coordinator work shaping (static cost table)
# ---------------------------------------------------------------------------


def test_lease_order_follows_the_static_cost_table():
    """Ready tasks must lease costliest-first: compiles before sweep points,
    and heavy workloads (mpeg2/jpeg) before light ones (blowfish)."""
    coordinator = Coordinator(lease_timeout=5.0)
    worker = coordinator.register()["worker_id"]
    # Submitted cheapest-first on purpose; lease order must invert it.
    coordinator.submit(make_spec("render:6.1") | {"kind": "render"})
    coordinator.submit(make_spec("sweep:latency:mpeg2:8") | {"workload": "mpeg2"})
    coordinator.submit(make_spec("compile:blowfish") | {"kind": "compile", "workload": "blowfish"})
    coordinator.submit(make_spec("compile:mpeg2") | {"kind": "compile", "workload": "mpeg2"})
    order = [coordinator.lease(worker, wait=0.05)["task"]["task_id"] for _ in range(4)]
    assert order == [
        "compile:mpeg2",       # heaviest kind x heaviest workload
        "compile:blowfish",    # any compile beats any sweep point
        "sweep:latency:mpeg2:8",
        "render:6.1",
    ]


def test_equal_cost_tasks_lease_fifo():
    coordinator = Coordinator(lease_timeout=5.0)
    worker = coordinator.register()["worker_id"]
    for index in range(3):
        coordinator.submit(make_spec(f"sweep:latency:mips:{index}") | {"workload": "mips"})
    order = [coordinator.lease(worker, wait=0.05)["task"]["task_id"] for _ in range(3)]
    assert order == [f"sweep:latency:mips:{index}" for index in range(3)]


def test_task_cost_recovers_workload_from_task_id():
    from repro.eval.remote.coordinator import task_cost

    tagged = task_cost({"kind": "compile", "workload": "mpeg2", "task_id": "compile:mpeg2"})
    untagged = task_cost({"kind": "compile", "task_id": "compile:mpeg2"})
    assert tagged == untagged
    assert task_cost({"kind": "compile", "task_id": "compile:mpeg2"}) > task_cost(
        {"kind": "compile", "task_id": "compile:blowfish"}
    )


# ---------------------------------------------------------------------------
# coordinator affinity sharding
# ---------------------------------------------------------------------------


def test_sweeps_lease_to_the_worker_that_compiled_their_workload():
    """Affinity sharding: each compiler's sweep/explore tasks prefer it, so
    its in-process sweep-input memo stays hot."""
    coordinator = Coordinator(lease_timeout=5.0)
    alpha = coordinator.register("alpha")["worker_id"]
    beta = coordinator.register("beta")["worker_id"]
    coordinator.submit(make_spec("compile:mips") | {"kind": "compile", "workload": "mips"})
    coordinator.submit(make_spec("compile:blowfish") | {"kind": "compile", "workload": "blowfish"})
    assert coordinator.lease(alpha, wait=0.05)["task"]["task_id"] == "compile:mips"
    assert coordinator.lease(beta, wait=0.05)["task"]["task_id"] == "compile:blowfish"
    coordinator.submit(
        make_spec("explore:blowfish:1") | {"kind": "explore", "workload": "blowfish"}
    )
    coordinator.submit(make_spec("explore:mips:1") | {"kind": "explore", "workload": "mips"})
    # beta asks first: cost order alone would hand it the costlier mips
    # explore — affinity must route it to its own (blowfish) work instead.
    assert coordinator.lease(beta, wait=0.05)["task"]["task_id"] == "explore:blowfish:1"
    assert coordinator.lease(alpha, wait=0.05)["task"]["task_id"] == "explore:mips:1"


def test_affinity_falls_back_to_any_worker():
    """A task whose compiling worker is gone (or busy with nothing else to
    offer) must still lease rather than idle the cluster."""
    coordinator = Coordinator(lease_timeout=0.2)
    alpha = coordinator.register("alpha")["worker_id"]
    beta = coordinator.register("beta")["worker_id"]
    coordinator.submit(make_spec("compile:mips") | {"kind": "compile", "workload": "mips"})
    assert coordinator.lease(alpha, wait=0.05)["task"] is not None
    coordinator.submit(make_spec("sweep:latency:mips:8") | {"workload": "mips"})
    # alpha is alive: beta defers... but only while something else is queued.
    # With the mips sweep as the sole ready task, beta leases it immediately.
    assert coordinator.lease(beta, wait=0.05)["task"]["task_id"] == "sweep:latency:mips:8"


def test_affinity_defers_claimed_work_while_other_work_exists():
    coordinator = Coordinator(lease_timeout=5.0)
    alpha = coordinator.register("alpha")["worker_id"]
    beta = coordinator.register("beta")["worker_id"]
    coordinator.submit(make_spec("compile:mips") | {"kind": "compile", "workload": "mips"})
    assert coordinator.lease(alpha, wait=0.05)["task"]["task_id"] == "compile:mips"
    # mips sweeps are claimed by alpha; the gsm sweep is unclaimed.  Cost
    # order alone would hand beta the costlier mips sweep (4.0 x) first.
    coordinator.submit(make_spec("sweep:latency:mips:8") | {"workload": "mips"})
    coordinator.submit(make_spec("sweep:latency:gsm:8") | {"workload": "gsm"})
    assert coordinator.lease(beta, wait=0.05)["task"]["task_id"] == "sweep:latency:gsm:8"
    assert coordinator.lease(beta, wait=0.05)["task"]["task_id"] == "sweep:latency:mips:8"


def test_compiles_still_outrank_affine_sweeps():
    """Affinity must not invert the cost shaping: the long poles (compiles)
    start before a worker drains its own cheap sweep backlog."""
    coordinator = Coordinator(lease_timeout=5.0)
    worker = coordinator.register()["worker_id"]
    coordinator.submit(make_spec("compile:mips") | {"kind": "compile", "workload": "mips"})
    assert coordinator.lease(worker, wait=0.05)["task"]["task_id"] == "compile:mips"
    coordinator.submit(make_spec("sweep:latency:mips:8") | {"workload": "mips"})
    coordinator.submit(make_spec("compile:blowfish") | {"kind": "compile", "workload": "blowfish"})
    assert coordinator.lease(worker, wait=0.05)["task"]["task_id"] == "compile:blowfish"
    assert coordinator.lease(worker, wait=0.05)["task"]["task_id"] == "sweep:latency:mips:8"


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------


def test_task_spec_round_trip_substitutes_configs_and_cache_spec():
    from repro.eval import taskgraph

    config = CompilerConfig()
    task = taskgraph.runtime_task(
        "blowfish", config, "/parent/cache", RuntimeConfig(queue_latency=8), "latency:blowfish:8"
    )
    spec = json.loads(json.dumps(protocol.encode_task(task, "/parent/cache")))
    task_id, fn, args, key, serializer = protocol.decode_task(spec, "http://worker-view:1")
    assert task_id == task.task_id and key == task.key and serializer == "json"
    assert fn is taskgraph.compute_runtime_point
    name, decoded_config, cache_spec, runtime = args
    assert name == "blowfish"
    assert cache_spec == "http://worker-view:1"  # the worker's own cache, not the parent path
    assert decoded_config.content_hash() == config.content_hash()  # identical cache keys
    assert runtime.queue_latency == 8


def test_render_task_round_trips_list_args_on_the_wire():
    from repro.eval import experiments, taskgraph

    task = taskgraph.render_task(
        "6.1",
        experiments.compute_figure_render,
        deps=("compile:blowfish", "compile:mips"),
        dep_keys=["a" * 64, "b" * 64],
        agg_arg=["blowfish", "mips"],
        cache_root="/parent/cache",
    )
    spec = json.loads(json.dumps(protocol.encode_task(task, "/parent/cache")))
    assert spec["kind"] == "render" and spec["fn"] == "compute_figure_render"
    task_id, fn, args, key, serializer = protocol.decode_task(spec, "http://worker:1")
    assert task_id == "render:6.1" and key == task.key and serializer == "json"
    assert fn is experiments.compute_figure_render
    figure_id, dep_ids, dep_keys, agg_arg, cache_spec = args
    assert figure_id == "6.1"
    assert list(dep_ids) == ["compile:blowfish", "compile:mips"]
    assert list(dep_keys) == ["a" * 64, "b" * 64]
    assert list(agg_arg) == ["blowfish", "mips"]
    assert cache_spec == "http://worker:1"  # the worker's own cache spec


def test_unregistered_payloads_and_keyless_tasks_are_rejected():
    task = Task(task_id="t", kind="runtime", fn=lambda: None, key="a" * 64)
    with pytest.raises(RemoteProtocolError, match="unregistered payload"):
        protocol.encode_task(task, None)
    from repro.eval.taskgraph import compute_compile

    keyless = Task(task_id="t", kind="compile", fn=compute_compile, key=None)
    with pytest.raises(RemoteProtocolError, match="no content key"):
        protocol.encode_task(keyless, None)
    with pytest.raises(RemoteProtocolError, match="unknown payload function"):
        protocol.decode_task(make_spec() | {"fn": "os.system"}, None)


# ---------------------------------------------------------------------------
# HMAC-signed envelope
# ---------------------------------------------------------------------------


def test_signed_pickles_round_trip_and_reject_tampering(tmp_path):
    cache = ArtifactCache(tmp_path, hmac_key="s3cret")
    path = cache.put("a" * 64, {"payload": [1, 2, 3]}, serializer="pickle")
    raw = path.read_bytes()
    assert raw.startswith(b"repro-hmac-v1\n")
    assert cache.get("a" * 64) == {"payload": [1, 2, 3]}
    # Flip one payload byte: signature check fails and the entry reads as a
    # miss — never unpickled.  It is NOT deleted (a mis-signed entry is
    # indistinguishable from another reader's validly keyed one); the
    # recompute that follows the miss overwrites it in place.
    path.write_bytes(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
    assert cache.get("a" * 64) is None
    assert path.exists()
    recomputed = cache.get_or_compute("a" * 64, lambda: {"payload": "fresh"}, serializer="pickle")
    assert recomputed == {"payload": "fresh"}
    assert cache.get("a" * 64) == {"payload": "fresh"}


def test_key_mismatch_and_unsigned_entries_read_as_misses(tmp_path):
    signed = ArtifactCache(tmp_path, hmac_key="key-one")
    signed.put("b" * 64, "value", serializer="pickle")
    assert ArtifactCache(tmp_path, hmac_key="key-two").get("b" * 64) is None  # wrong key
    unsigned = ArtifactCache(tmp_path)
    unsigned.put("c" * 64, "legacy", serializer="pickle")
    assert ArtifactCache(tmp_path, hmac_key="key-one").get("c" * 64) is None  # unsigned entry
    # JSON entries carry no envelope and are unaffected by keys.
    signed2 = ArtifactCache(tmp_path, hmac_key="key-one")
    signed2.put("d" * 64, {"v": 1}, serializer="json")
    assert ArtifactCache(tmp_path).get("d" * 64) == {"v": 1}


def test_scheduler_scopes_the_process_hmac_key_to_the_run(tmp_path):
    """A keyed run must not leak its envelope key into later key-less caches
    constructed in the same process."""
    from repro.eval.cache import process_hmac_key

    before = process_hmac_key()
    cache = ArtifactCache(tmp_path, hmac_key="run-scoped")
    graph = TaskGraph()
    graph.add(aggregate_task("noop", lambda results: 1, []))
    TaskScheduler(graph, cache=cache).run()
    assert process_hmac_key() == before  # restored, not "run-scoped"


def test_crashed_lock_holder_is_reaped_without_further_acquires(tmp_path):
    """The cache service's reaper must free an expired lock lease on its own,
    or a co-located local flock waiter could block forever."""
    server = make_cache_server(tmp_path / "served", port=0, lock_lease_seconds=0.3)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        token = server.try_acquire("a" * 64)
        assert token is not None  # "client" acquires, then crashes silently
        deadline = time.time() + 5.0
        while server.lock_leases and time.time() < deadline:
            time.sleep(0.05)
        assert not server.lock_leases  # reaper released the flock unprompted
        with LocalFSBackend(tmp_path / "served").lock("a" * 64):
            pass  # a local flock waiter gets through
    finally:
        server.shutdown()
        server.server_close()


def test_envelope_helpers_reject_truncation():
    from repro.errors import CacheIntegrityError
    from repro.eval.cache import open_envelope

    data = sign_envelope(b"payload", "k")
    assert open_envelope(data, "k") == b"payload"
    with pytest.raises(CacheIntegrityError):
        open_envelope(data[: len(b"repro-hmac-v1\n") + 10], "k")
    with pytest.raises(CacheIntegrityError):
        open_envelope(b"not an envelope", "k")


# ---------------------------------------------------------------------------
# HTTP cache service
# ---------------------------------------------------------------------------


@pytest.fixture
def cache_server(tmp_path):
    server = make_cache_server(tmp_path / "served", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()


def test_http_cache_round_trip_json_and_pickle(cache_server):
    remote = ArtifactCache(backend=HTTPCacheBackend(cache_server.url))
    assert remote.get("1" * 64) is None
    assert not remote.contains("1" * 64)
    remote.put("1" * 64, {"cycles": 123.5}, serializer="json")
    remote.put("2" * 64, ("tuple", [1, 2]), serializer="pickle")
    assert remote.get("1" * 64) == {"cycles": 123.5}
    assert remote.get("2" * 64) == ("tuple", [1, 2])
    assert remote.contains("2" * 64)
    # The served store is an ordinary local cache: a direct reader sees the
    # same entries, byte-compatibly.
    local = ArtifactCache(backend=cache_server.backend)
    assert local.get("1" * 64) == {"cycles": 123.5}
    assert remote.stats()["entries"] == 2


def test_http_cache_single_flight_across_clients(cache_server):
    computed = []

    def compute():
        computed.append(1)
        time.sleep(0.3)
        return {"v": 9}

    def contend():
        backend = HTTPCacheBackend(cache_server.url)
        assert ArtifactCache(backend=backend).get_or_compute(
            "9" * 64, compute, serializer="json"
        ) == {"v": 9}

    threads = [threading.Thread(target=contend) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert len(computed) == 1  # the second client waited on the server-side lock


def test_http_cache_rejects_bad_keys_and_paths(cache_server):
    backend = HTTPCacheBackend(cache_server.url)
    with pytest.raises(ReproError):
        backend.get_blob("../../etc/passwd")
    request = urllib.request.Request(f"{cache_server.url}/objects/nothex", method="GET")
    with pytest.raises(urllib.error.HTTPError):
        urllib.request.urlopen(request, timeout=5)


def test_maintenance_requires_local_cache(cache_server):
    remote = ArtifactCache(backend=HTTPCacheBackend(cache_server.url))
    with pytest.raises(ReproError, match="local cache"):
        remote.clear()
    with pytest.raises(ReproError, match="local cache"):
        remote.prune(0)
    assert remote.root is None


def test_from_spec_picks_backend(tmp_path):
    assert isinstance(ArtifactCache.from_spec(str(tmp_path)).backend, LocalFSBackend)
    assert isinstance(ArtifactCache.from_spec("http://example:1").backend, HTTPCacheBackend)
    assert ArtifactCache.from_spec("http://example:1").spec == "http://example:1"


# ---------------------------------------------------------------------------
# shared-secret service auth
# ---------------------------------------------------------------------------


@pytest.fixture
def scoped_token():
    """Set (and always restore) the process-level service token."""

    def set_token(token):
        previous = protocol.set_process_service_token(token)
        restores.append(previous)
        return token

    restores = []
    yield set_token
    for previous in reversed(restores):
        protocol.set_process_service_token(previous)


def test_cache_service_requires_matching_token(tmp_path, scoped_token):
    from repro.errors import RemoteError

    server = make_cache_server(tmp_path / "served", port=0, token="s3cret")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        backend = HTTPCacheBackend(server.url)
        # No token: every store operation is refused with an actionable error.
        with pytest.raises(RemoteError, match="REPRO_SERVICE_TOKEN"):
            backend.get_blob("1" * 64)
        with pytest.raises(RemoteError):
            backend.put_blob("1" * 64, "json", b"{}")
        with pytest.raises(RemoteError):
            backend.contains("1" * 64)
        # Wrong token: same refusal (constant-time compare, no oracle).
        scoped_token("wrong")
        with pytest.raises(RemoteError, match="401"):
            backend.get_blob("1" * 64)
        # Matching token: full round trip works again.
        scoped_token("s3cret")
        cache = ArtifactCache(backend=HTTPCacheBackend(server.url))
        cache.put("1" * 64, {"v": 1}, serializer="json")
        assert cache.get("1" * 64) == {"v": 1}
        assert cache.contains("1" * 64)
        assert cache.stats()["entries"] == 1
        # The liveness probe stays open for scripts and CI.
        scoped_token(None)
        assert protocol.http_get_json(f"{server.url}/healthz")["ok"] is True
    finally:
        server.shutdown()
        server.server_close()


def test_cache_service_head_rejects_bad_token_without_body(tmp_path, scoped_token):
    server = make_cache_server(tmp_path / "served", port=0, token="s3cret")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        request = urllib.request.Request(f"{server.url}/objects/{'2' * 64}", method="HEAD")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 401
    finally:
        server.shutdown()
        server.server_close()


def test_coordinator_requires_matching_token(scoped_token):
    from repro.errors import RemoteError
    from repro.eval.remote.coordinator import start_coordinator_server

    coordinator = Coordinator()
    server = start_coordinator_server(coordinator, port=0, token="s3cret")
    try:
        with pytest.raises(RemoteError, match="401"):
            protocol.http_post_json(f"{server.url}/workers/register", {"name": "w"})
        assert protocol.http_get_json(f"{server.url}/healthz")["ok"] is True
        scoped_token("s3cret")
        response = protocol.http_post_json(f"{server.url}/workers/register", {"name": "w"})
        assert response["worker_id"] == "w"
        assert protocol.http_get_json(f"{server.url}/status")["workers"] == ["w"]
    finally:
        server.shutdown()
        server.server_close()


# ---------------------------------------------------------------------------
# worker pool daemon (--pool N)
# ---------------------------------------------------------------------------


def test_worker_pool_drives_n_registered_executors():
    from repro.eval.remote.worker import run_worker_pool

    executor = RemoteExecutor(port=0, worker_timeout=60.0)
    result = {}

    def drive_pool():
        result["code"] = run_worker_pool(
            2,
            coordinator_url=executor.url,
            poll_wait=0.2,
            startup_timeout=30.0,
            verbose=False,
        )

    supervisor = threading.Thread(target=drive_pool, daemon=True)
    supervisor.start()
    try:
        deadline = time.time() + 30
        while executor.coordinator.worker_count < 2 and time.time() < deadline:
            time.sleep(0.05)
        assert executor.coordinator.worker_count == 2  # both members registered
        executor.close()  # run over: members observe shutdown and exit
        supervisor.join(timeout=30)
        assert not supervisor.is_alive()
        assert result["code"] == 0
    finally:
        executor.stop_server()


# ---------------------------------------------------------------------------
# remote executor + real worker loop (cheap fake payloads)
# ---------------------------------------------------------------------------


def fake_payload(base):
    """Cheap stand-in for a sweep payload (registered on the wire below)."""
    return {"value": base * 2}


protocol.register_payload_function("_test_fake_payload", fake_payload)


def fake_task(task_id="sweep:fake:21", base=21, key="e" * 64):
    return Task(
        task_id=task_id, kind="runtime", fn=fake_payload, args=(base,), key=key,
        serializer="json",
    )


def test_scheduler_with_remote_executor_and_real_worker(tmp_path):
    graph = TaskGraph()
    graph.add(fake_task())
    graph.add(aggregate_task("agg", lambda results: results["sweep:fake:21"]["value"], ["sweep:fake:21"]))
    cache = ArtifactCache(tmp_path / "cache")
    trace = TraceRecorder()
    executor = RemoteExecutor(port=0, lease_timeout=10.0, worker_timeout=60.0)
    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(
            coordinator_url=executor.url,
            cache_spec=str(tmp_path / "cache"),
            poll_wait=0.5,
            verbose=False,
        ),
        daemon=True,
    )
    worker.start()
    try:
        results = TaskScheduler(graph, cache=cache, executor=executor, trace=trace).run()
        assert results["agg"] == 42
        # The worker published through the cache, not the coordinator wire.
        assert cache.get("e" * 64) == {"value": 42}
        # Both the remote task and the parent-side aggregate were traced,
        # on different lanes.
        spans = {event["name"]: event for event in trace.events}
        assert spans["sweep:fake:21"]["tid"] != spans["agg"]["tid"]
        # After the run the worker is told to shut down and exits.
        worker.join(timeout=15)
        assert not worker.is_alive()
    finally:
        executor.stop_server()


def test_persistent_executor_survives_scheduler_runs_until_finalized(tmp_path):
    """The multi-generation contract of ``repro explore --workers``: one
    persistent RemoteExecutor (one coordinator, one worker registration)
    serves several scheduler runs; only ``finalize`` ends the run for the
    workers."""
    cache = ArtifactCache(tmp_path / "cache")
    executor = RemoteExecutor(port=0, lease_timeout=10.0, worker_timeout=60.0,
                              persistent=True)
    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(
            coordinator_url=executor.url,
            cache_spec=str(tmp_path / "cache"),
            poll_wait=0.2,
            verbose=False,
        ),
        daemon=True,
    )
    worker.start()
    try:
        for generation, key_char in enumerate("ab"):
            graph = TaskGraph()
            graph.add(fake_task(task_id=f"sweep:fake:{generation}", key=key_char * 64))
            results = TaskScheduler(graph, cache=cache, executor=executor).run()
            assert results[f"sweep:fake:{generation}"] == {"value": 42}
            # The scheduler close()d the executor after the run, but the
            # persistent coordinator is still serving and the worker is
            # still registered — no shutdown was broadcast.
            assert executor.coordinator.status()["shutdown"] is False
            assert worker.is_alive()
        executor.finalize()
        assert executor.coordinator.status()["shutdown"] is True
        worker.join(timeout=15)
        assert not worker.is_alive()  # finalize told the worker the run ended
    finally:
        executor.stop_server()


def test_explore_candidates_execute_on_remote_workers(tmp_path):
    """A full multi-generation exploration through a persistent executor and
    a real worker must equal the serial search byte for byte (candidate
    params/space dicts cross the wire via the plain-dict encoding)."""
    import json as json_mod

    from repro.eval.harness import EvaluationHarness
    from repro.explore.driver import ExplorationDriver
    from repro.explore.space import Dimension, SearchSpace

    space = SearchSpace(
        dimensions=(
            Dimension("sw_fraction", "partition", "sw_fraction", (0.25, 0.5, 0.75)),
            Dimension("queue_depth", "runtime", "queue_depth", (4, 8)),
        )
    )
    cache_dir = str(tmp_path / "cache")
    executor = RemoteExecutor(port=0, lease_timeout=30.0, worker_timeout=120.0,
                              persistent=True)
    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(coordinator_url=executor.url, cache_spec=cache_dir, poll_wait=0.2,
                    verbose=False),
        daemon=True,
    )
    worker.start()
    try:
        harness = EvaluationHarness(benchmarks=["blowfish"], cache_dir=cache_dir)
        remote = ExplorationDriver(
            harness, "blowfish", strategy="annealing", budget=4, seed=5,
            space=space, executor=executor,
        ).run()
        executor.finalize()
        serial_harness = EvaluationHarness(
            benchmarks=["blowfish"], cache_dir=str(tmp_path / "serial")
        )
        serial = ExplorationDriver(
            serial_harness, "blowfish", strategy="annealing", budget=4, seed=5,
            space=space,
        ).run()
        assert json_mod.dumps(remote.to_json_dict(), sort_keys=True) == json_mod.dumps(
            serial.to_json_dict(), sort_keys=True
        )
        worker.join(timeout=30)
        assert not worker.is_alive()
    finally:
        executor.stop_server()


def test_render_tasks_execute_on_remote_workers(tmp_path):
    """A figure render must cross the wire like any sweep point: the worker
    reads the dependency artefacts from the shared cache, renders, and ships
    the SVG back as a JSON value."""
    from repro.eval import experiments
    from repro.eval.harness import EvaluationHarness

    cache_dir = str(tmp_path / "cache")
    harness = EvaluationHarness(benchmarks=["blowfish"], cache_dir=cache_dir)
    executor = RemoteExecutor(port=0, lease_timeout=30.0, worker_timeout=120.0)
    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(coordinator_url=executor.url, cache_spec=cache_dir, poll_wait=0.5,
                    verbose=False),
        daemon=True,
    )
    worker.start()
    try:
        from repro.eval.taskgraph import TaskGraph

        graph = TaskGraph()
        render_id = experiments.declare_figure_render(graph, harness, "6.4")
        results = harness.execute(graph, executor=executor)
        markup = results[render_id]
        assert markup.startswith("<svg") and "blowfish" in markup
        # Byte-identical to a purely local render of the same artefacts.
        local = EvaluationHarness(benchmarks=["blowfish"], cache_dir=cache_dir)
        assert experiments.figure_svg("6.4", local) == markup
        worker.join(timeout=30)
        assert not worker.is_alive()
    finally:
        executor.stop_server()


def test_worker_accepts_schemeless_coordinator_address(tmp_path):
    """`--coordinator HOST:PORT` (the form `--workers` prints/accepts) must
    work, not crash with an unknown-url-type ValueError."""
    executor = RemoteExecutor(port=0, worker_timeout=60.0)
    address = executor.url[len("http://"):]
    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(coordinator_url=address, cache_spec=str(tmp_path), poll_wait=0.2,
                    verbose=False),
        daemon=True,
    )
    worker.start()
    try:
        deadline = time.time() + 15
        while executor.coordinator.worker_count == 0 and time.time() < deadline:
            time.sleep(0.05)
        assert executor.coordinator.worker_count == 1  # registration worked
        executor.close()  # run over: the worker must notice and exit
        worker.join(timeout=15)
        assert not worker.is_alive()
    finally:
        executor.stop_server()


def test_worker_reported_failure_aborts_the_run(tmp_path):
    def exploding(base):
        raise ValueError("boom")

    protocol.register_payload_function("_test_exploding", exploding)
    graph = TaskGraph()
    graph.add(Task(task_id="sweep:boom", kind="runtime", fn=exploding, args=(1,),
                   key="b" * 64, serializer="json"))
    executor = RemoteExecutor(port=0, lease_timeout=10.0, worker_timeout=60.0)
    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(coordinator_url=executor.url, cache_spec=str(tmp_path), poll_wait=0.5,
                    verbose=False, max_tasks=1),
        daemon=True,
    )
    worker.start()
    try:
        with pytest.raises(RemoteTaskError, match="boom"):
            TaskScheduler(graph, cache=ArtifactCache(tmp_path), executor=executor).run()
    finally:
        executor.stop_server()
        worker.join(timeout=15)


def test_tasks_the_executor_cannot_run_fall_back_to_the_parent(tmp_path):
    ran_inline = []

    def unregistered():
        ran_inline.append(True)
        return {"ok": 1}

    graph = TaskGraph()
    graph.add(Task(task_id="sweep:inline", kind="runtime", fn=unregistered,
                   key="c" * 64, serializer="json"))
    executor = RemoteExecutor(port=0, worker_timeout=60.0)
    try:
        results = TaskScheduler(graph, cache=ArtifactCache(tmp_path), executor=executor).run()
    finally:
        executor.stop_server()
    assert results["sweep:inline"] == {"ok": 1}
    assert ran_inline  # no worker existed; the parent ran it inline


# ---------------------------------------------------------------------------
# graceful interrupt
# ---------------------------------------------------------------------------


def test_keyboard_interrupt_sweeps_lock_files_serial(tmp_path):
    cache = ArtifactCache(tmp_path)

    def interrupted():
        raise KeyboardInterrupt

    graph = TaskGraph()
    graph.add(Task(task_id="sweep:interrupted", kind="runtime", fn=interrupted,
                   key="a" * 64, serializer="json"))
    with pytest.raises(KeyboardInterrupt):
        TaskScheduler(graph, cache=cache).run()
    # get_or_compute created the per-key lock file; the graceful-shutdown
    # path must not leave it behind.
    assert not cache.backend.lock_path("a" * 64).exists()
    assert list((tmp_path / "locks").rglob("*.lock")) == []


def test_keyboard_interrupt_with_executor_closes_it(tmp_path):
    closed = []

    class Recorder:
        def can_execute(self, task):
            return False

        def submit(self, task, cache):  # pragma: no cover - never reached
            raise AssertionError

        def wait(self):  # pragma: no cover - never reached
            return []

        def close(self, interrupt=False):
            closed.append(interrupt)

    def interrupted():
        raise KeyboardInterrupt

    graph = TaskGraph()
    graph.add(Task(task_id="sweep:interrupted", kind="runtime", fn=interrupted,
                   key="d" * 64, serializer="json"))
    cache = ArtifactCache(tmp_path)
    with pytest.raises(KeyboardInterrupt):
        TaskScheduler(graph, cache=cache, executor=Recorder()).run()
    assert True in closed  # interrupt-mode close happened
    assert not cache.backend.lock_path("d" * 64).exists()


# ---------------------------------------------------------------------------
# end-to-end localhost smoke (subprocesses; the acceptance criterion)
# ---------------------------------------------------------------------------


def test_distributed_smoke_localhost():
    """Cache server + two workers (one crash-injected) + ``repro report
    --workers`` must be byte-identical to a cold serial run."""
    import subprocess
    import sys as _sys

    repo_root = Path(__file__).resolve().parent.parent
    proc = subprocess.run(
        [
            _sys.executable,
            str(repo_root / "tools" / "distributed_smoke.py"),
            "--benchmarks", "blowfish",
            "--lease-timeout", "10",
        ],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    assert "byte-identical" in proc.stdout
