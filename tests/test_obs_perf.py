"""Performance-observatory tests: profiler, trace analytics, run history.

Covers the three PR-9 subsystems end to end but in-process:

* ``repro.obs.profile`` — sampling correctness, deterministic counters,
  env gating, fork safety of the module globals, merge/collapse helpers;
* ``repro.obs.analyze`` — per-kind summary (self time, percentiles),
  critical path and scheduler-overhead accounting over synthetic spans;
* ``repro.obs.history`` — the persistent ledger, the rolling-median
  regression gate, and the ``repro history`` CLI surface;
* the observe-only invariant: profiled runs compute identical results;
* the viz layers (`flame`, `trend`) and the report-HTML telemetry cards.
"""

import json
import time

import pytest

from repro.cli import main
from repro.eval.cache import ArtifactCache
from repro.eval.taskgraph import Task, TaskGraph, TaskScheduler, aggregate_task
from repro.obs import analyze as obs_analyze
from repro.obs import history as obs_history
from repro.obs import profile as obs_profile
from repro.viz.flame import flamegraph, top_frames_rows
from repro.viz.trend import sparkline_svg, trend_chart


@pytest.fixture(autouse=True)
def _fresh_profile_state():
    obs_profile.reset()
    yield
    obs_profile.reset()


# ---------------------------------------------------------------------------
# sampling profiler
# ---------------------------------------------------------------------------


def _busy(seconds):
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += 1
    return total


def test_sampler_captures_stacks_and_counters():
    profiler = obs_profile.SamplingProfiler(hz=200, service="test")
    profiler.start()
    _busy(0.25)
    profiler.count("task.demo")
    profiler.count("task.demo", 2.0)
    profiler.stop()
    record = profiler.snapshot()
    assert record["kind"] == "profile" and record["service"] == "test"
    assert record["samples"] > 0
    assert record["duration_seconds"] > 0.2
    assert any("_busy" in stack for stack in record["stacks"])
    assert record["counters"] == {"task.demo": 3.0}


def test_profile_dump_load_merge_roundtrip(tmp_path):
    sink = tmp_path / "profile.jsonl"
    for service in ("cli", "pool"):
        profiler = obs_profile.SamplingProfiler(hz=500, service=service)
        profiler.start()
        _busy(0.1)
        profiler.count("task.compile")
        profiler.stop()
        profiler.dump(sink)
    sink_lines = sink.read_text().splitlines()
    assert len(sink_lines) == 2 and all(json.loads(line) for line in sink_lines)
    records = obs_profile.load_profiles(sink)
    assert [record["service"] for record in records] == ["cli", "pool"]
    merged = obs_profile.merge_stacks(records)
    assert sum(merged.values()) == sum(record["samples"] for record in records)
    assert obs_profile.merge_counters(records) == {"task.compile": 2.0}
    collapsed = obs_profile.collapsed_lines(merged)
    assert all(line.rsplit(" ", 1)[1].isdigit() for line in collapsed.splitlines())
    top = obs_profile.top_self(merged, limit=3)
    assert top and top[0]["samples"] >= top[-1]["samples"]
    assert sum(entry["fraction"] for entry in obs_profile.top_self(merged)) <= 1.01


def test_maybe_start_is_env_gated_and_idempotent(tmp_path, monkeypatch):
    monkeypatch.delenv(obs_profile.PROFILE_ENV, raising=False)
    assert obs_profile.maybe_start() is None
    assert not obs_profile.enabled()
    obs_profile.count("task.ignored")  # free no-op when off

    obs_profile.reset()
    sink = tmp_path / "p.jsonl"
    monkeypatch.setenv(obs_profile.PROFILE_ENV, str(sink))
    monkeypatch.setenv(obs_profile.PROFILE_HZ_ENV, "250")
    first = obs_profile.maybe_start(service="cli")
    assert first is not None and first.hz == 250 and first.running
    assert obs_profile.maybe_start(service="pool") is first
    assert first.service == "pool"  # re-entry refines the label only
    obs_profile.count("task.demo")
    obs_profile.shutdown()
    assert not first.running
    [record] = obs_profile.load_profiles(sink)
    assert record["counters"] == {"task.demo": 1.0}
    # shutdown() resets: a second shutdown must not append a second record.
    obs_profile.shutdown()
    assert len(sink.read_text().splitlines()) == 1


def test_forked_child_state_is_not_reused(tmp_path, monkeypatch):
    # Simulate the fork: the module globals hold the parent's profiler but
    # the owner pid no longer matches → maybe_start builds a fresh one.
    monkeypatch.setenv(obs_profile.PROFILE_ENV, str(tmp_path / "p.jsonl"))
    parent = obs_profile.maybe_start(service="cli")
    assert parent is not None
    monkeypatch.setattr(obs_profile, "_owner_pid", obs_profile._owner_pid + 1)
    child = obs_profile.maybe_start(service="pool")
    assert child is not parent and child.service == "pool"
    # An inherited shutdown hook in a process that isn't the owner is a no-op.
    monkeypatch.setattr(obs_profile, "_owner_pid", obs_profile._owner_pid + 1)
    obs_profile.shutdown()
    assert not (tmp_path / "p.jsonl").exists()


def _payload(base):
    return base * 2


def test_profiled_run_computes_identical_results(tmp_path, monkeypatch):
    def make_graph():
        graph = TaskGraph()
        graph.add(Task(task_id="t:a", kind="runtime", fn=_payload, args=(2,)))
        graph.add(Task(task_id="t:b", kind="runtime", fn=_payload, args=(3,)))
        graph.add(aggregate_task(
            "agg", lambda values: sum(values.values()), ["t:a", "t:b"]
        ))
        return graph

    monkeypatch.delenv(obs_profile.PROFILE_ENV, raising=False)
    plain = TaskScheduler(make_graph(), cache=ArtifactCache(tmp_path / "c1")).run()
    obs_profile.reset()
    monkeypatch.setenv(obs_profile.PROFILE_ENV, str(tmp_path / "p.jsonl"))
    obs_profile.maybe_start(service="cli")
    profiled = TaskScheduler(make_graph(), cache=ArtifactCache(tmp_path / "c2")).run()
    obs_profile.shutdown()
    assert plain == profiled


# ---------------------------------------------------------------------------
# trace analytics
# ---------------------------------------------------------------------------


def _span(name, kind, span_id, parent_id, start, end, worker=None, trace="f" * 32):
    return {
        "trace_id": trace, "span_id": span_id, "parent_id": parent_id,
        "name": name, "kind": kind, "service": "cli", "worker": worker,
        "start": start, "end": end, "attrs": {},
    }


@pytest.fixture
def synthetic_trace():
    # scheduler.run [0, 10]; two tasks, one with a nested cache span.
    return [
        _span("scheduler.run", "scheduler", "01", None, 0.0, 10.0),
        _span("task:compile:a", "compile", "02", "01", 0.5, 6.5, worker="pid:1"),
        _span("cache.get_or_compute", "cache", "03", "02", 1.0, 2.0, worker="pid:1"),
        _span("task:sweep:b", "runtime", "04", "01", 6.5, 9.0, worker="pid:2"),
    ]


def test_summarize_reports_self_time_and_percentiles(synthetic_trace):
    rows = {row["kind"]: row for row in obs_analyze.summarize(synthetic_trace)}
    assert rows["compile"]["count"] == 1
    assert rows["compile"]["total_seconds"] == pytest.approx(6.0)
    # The nested cache second is the child's, not the compile span's self time.
    assert rows["compile"]["self_seconds"] == pytest.approx(5.0)
    assert rows["scheduler"]["self_seconds"] == pytest.approx(10.0 - 8.5)
    assert rows["runtime"]["p50_seconds"] == pytest.approx(2.5)
    # Sorted by total descending: the scheduler span dominates.
    assert obs_analyze.summarize(synthetic_trace)[0]["kind"] == "scheduler"


def test_critical_path_descends_to_latest_ending_child(synthetic_trace):
    path = obs_analyze.critical_path(synthetic_trace)
    assert [hop["name"] for hop in path["hops"]] == ["scheduler.run", "task:sweep:b"]
    assert path["window_seconds"] == pytest.approx(10.0)
    assert path["coverage"] == pytest.approx(1.0)
    rendered = obs_analyze.render_critical_path(synthetic_trace)
    assert "critical path:" in rendered and "coverage 100%" in rendered


def test_scheduler_overhead_accounts_uncovered_time(synthetic_trace):
    overhead = obs_analyze.scheduler_overhead(synthetic_trace)
    assert overhead["runs"] == 1
    assert overhead["total_seconds"] == pytest.approx(10.0)
    # Tasks cover [0.5, 6.5] and [6.5, 9.0] → 1.5s of the 10s is overhead.
    assert overhead["overhead_seconds"] == pytest.approx(1.5)
    assert overhead["overhead_fraction"] == pytest.approx(0.15)
    summary_text = obs_analyze.render_summary(synthetic_trace)
    assert "scheduler overhead" in summary_text


def test_critical_path_picks_the_widest_trace():
    spans = [
        _span("small.root", "harness", "0a", None, 0.0, 1.0, trace="a" * 32),
        _span("wide.root", "harness", "0b", None, 0.0, 5.0, trace="b" * 32),
    ]
    assert obs_analyze.critical_path(spans)["trace_id"] == "b" * 32
    assert obs_analyze.critical_path(spans, trace_id="a" * 32)["path_seconds"] == (
        pytest.approx(1.0)
    )


def test_trace_cli_summary_and_critical_path(tmp_path, capsys, synthetic_trace):
    trace_file = tmp_path / "trace.jsonl"
    trace_file.write_text(
        "\n".join(json.dumps(span) for span in synthetic_trace) + "\n"
    )
    assert main(["trace", str(trace_file), "--summary"]) == 0
    out, _ = capsys.readouterr()
    assert "kind" in out and "compile" in out and "scheduler overhead" in out
    assert main(["trace", str(trace_file), "--critical-path"]) == 0
    out, _ = capsys.readouterr()
    assert "critical path:" in out and "task:sweep:b" in out
    assert main(["trace", str(trace_file), "--summary", "--critical-path",
                 "--json"]) == 0
    out, _ = capsys.readouterr()
    payload = json.loads(out)
    assert {"summary", "scheduler_overhead", "critical_path"} <= payload.keys()


# ---------------------------------------------------------------------------
# run history + regression gate
# ---------------------------------------------------------------------------


def _seed(directory, wall, command="report"):
    record = obs_history.record_run(
        command, {"wall_seconds": wall, "cache_hit_rate": 0.5},
        attrs={"benchmarks": "blowfish"}, directory=str(directory),
    )
    assert record is not None
    return record


def test_record_run_appends_schema_stamped_jsonl(tmp_path):
    record = _seed(tmp_path, 1.25)
    assert record["schema"] == obs_history.SCHEMA
    assert record["env"]["python"] and record["env"]["cpu_count"]
    runs = obs_history.load_runs(tmp_path / obs_history.HISTORY_FILE)
    assert len(runs) == 1 and runs[0]["metrics"]["wall_seconds"] == 1.25
    series = obs_history.metric_series(runs, command="report")
    assert series["wall_seconds"] == [1.25]
    assert obs_history.metric_series(runs, command="explore") == {}


def test_history_env_disables_and_redirects(tmp_path, monkeypatch):
    monkeypatch.setenv(obs_history.HISTORY_ENV, "0")
    assert obs_history.history_path() is None
    assert obs_history.record_run("report", {"wall_seconds": 1.0}) is None
    monkeypatch.setenv(obs_history.HISTORY_ENV, str(tmp_path / "ledger"))
    assert obs_history.history_path() == tmp_path / "ledger" / obs_history.HISTORY_FILE
    assert obs_history.explicit_path() is not None
    monkeypatch.delenv(obs_history.HISTORY_ENV)
    assert obs_history.explicit_path() is None  # default-on ≠ explicit opt-in


def test_regression_gate_fires_only_past_threshold_and_floor(tmp_path):
    for wall in (10.0, 10.2, 9.9, 10.1):
        _seed(tmp_path, wall)
    runs = obs_history.load_runs(tmp_path / obs_history.HISTORY_FILE)
    assert obs_history.check_regressions(runs) == []

    _seed(tmp_path, 20.0)
    runs = obs_history.load_runs(tmp_path / obs_history.HISTORY_FILE)
    [regression] = obs_history.check_regressions(runs)
    assert regression["metric"] == "wall_seconds"
    assert regression["ratio"] == pytest.approx(20.0 / 10.05, rel=1e-3)
    assert "REGRESSIONS" in obs_history.render_regressions([regression])

    # Tiny absolute deltas stay under the jitter floor even at a high ratio.
    fast = tmp_path / "fast"
    for wall in (0.010, 0.010, 0.011, 0.010, 0.030):
        _seed(fast, wall)
    runs = obs_history.load_runs(fast / obs_history.HISTORY_FILE)
    assert obs_history.check_regressions(runs) == []


def test_regression_gate_needs_min_history(tmp_path):
    for wall in (1.0, 5.0):  # only one prior value: no baseline yet
        _seed(tmp_path, wall)
    runs = obs_history.load_runs(tmp_path / obs_history.HISTORY_FILE)
    assert obs_history.check_regressions(runs) == []


def test_history_cli_show_trend_check(tmp_path, capsys):
    ledger = tmp_path / "ledger"
    for wall in (10.0, 10.3, 9.8, 10.1):
        _seed(ledger, wall)
    assert main(["history", "show", "--history", str(ledger)]) == 0
    out, _ = capsys.readouterr()
    assert "report" in out and "wall_seconds=" in out
    assert main(["history", "trend", "--history", str(ledger)]) == 0
    out, _ = capsys.readouterr()
    assert "wall_seconds" in out and "med=" in out
    assert main(["history", "check", "--history", str(ledger)]) == 0
    out, _ = capsys.readouterr()
    assert "ok: no regressions" in out

    _seed(ledger, 30.0)
    assert main(["history", "check", "--history", str(ledger), "--json"]) == 1
    out, _ = capsys.readouterr()
    assert json.loads(out)["regressions"][0]["metric"] == "wall_seconds"
    # A tighter threshold is an argument, not a code change.
    assert main(["history", "check", "--history", str(ledger),
                 "--threshold", "4.0"]) == 0
    capsys.readouterr()

    svg_dir = tmp_path / "svg"
    assert main(["history", "trend", "--history", str(ledger),
                 "--svg-dir", str(svg_dir)]) == 0
    capsys.readouterr()
    svgs = list(svg_dir.glob("*.svg"))
    assert svgs and all("<svg" in svg.read_text() for svg in svgs)


def test_history_cli_empty_ledger_is_a_clean_error(tmp_path, capsys):
    assert main(["history", "show", "--history", str(tmp_path / "none")]) == 2
    _, err = capsys.readouterr()
    assert "no run history" in err
    # check on an empty ledger is a pass (nothing to regress), not an error.
    assert main(["history", "check", "--history", str(tmp_path / "none")]) == 0
    capsys.readouterr()


def test_sparkline_shape():
    assert obs_history.sparkline([]) == ""
    line = obs_history.sparkline([1.0, 2.0, 3.0])
    assert len(line) == 3 and line[0] == "▁" and line[-1] == "█"
    assert obs_history.sparkline([2.0, 2.0]) == "▁▁"  # flat series stays low


# ---------------------------------------------------------------------------
# viz: flamegraph + trend charts
# ---------------------------------------------------------------------------


def test_flamegraph_is_deterministic_and_labelled():
    stacks = {
        "m:main;m:compile;m:lex": 30,
        "m:main;m:compile;m:parse": 50,
        "m:main;m:report": 20,
    }
    svg = flamegraph(stacks)
    assert svg == flamegraph(dict(reversed(list(stacks.items()))))
    assert svg.count("<svg") == 1 and "vz-ring" in svg
    assert "m:compile — 80 samples (80.0%)" in svg
    assert "CPU profile (sampled)" in svg
    rows = top_frames_rows(stacks, limit=2)
    assert rows[0][0] == "m:parse" and rows[0][1] == "50"


def test_flamegraph_empty_and_narrow_frames():
    assert "no samples" in flamegraph({})
    # A frame below one pixel is dropped, not rendered at negative width.
    wide = {"m:a;m:hot": 100000, "m:a;m:cold": 1}
    svg = flamegraph(wide)
    assert "m:hot" in svg and "m:cold" not in svg


def test_trend_chart_and_sparkline_svg():
    chart = trend_chart("wall_seconds", [1.0, 1.2, 0.9], command="report")
    assert "history · report: wall_seconds" in chart and "<svg" in chart
    assert chart == trend_chart("wall_seconds", [1.0, 1.2, 0.9], command="report")
    spark = sparkline_svg([1.0, 2.0, 1.5])
    assert "<svg" in spark and "polyline" in spark
    assert "polyline" not in sparkline_svg([1.0])  # needs two points for a line


# ---------------------------------------------------------------------------
# report HTML: telemetry cards
# ---------------------------------------------------------------------------


def test_report_html_renders_telemetry_cards(synthetic_trace):
    from repro.viz.report_html import build_report_html

    analytics = {
        "summary": obs_analyze.summarize(synthetic_trace),
        "critical_path": obs_analyze.critical_path(synthetic_trace),
        "overhead": obs_analyze.scheduler_overhead(synthetic_trace),
    }
    profile = {
        "svg": flamegraph({"m:main;m:compile": 10}),
        "samples": 10, "hz": 97,
        "top": obs_profile.top_self({"m:main;m:compile": 10}),
    }
    trends = [{"metric": "wall_seconds", "values": [1.0, 1.1],
               "svg": trend_chart("wall_seconds", [1.0, 1.1], command="report")}]
    document = build_report_html({}, {}, {}, analytics=analytics,
                                 profile=profile, trends=trends)
    for marker in ('id="trace-analytics"', 'id="profile"', 'id="trends"',
                   "Critical path", "task:sweep:b", "Scheduler overhead"):
        assert marker in document
    # The self-contained contract still holds: no scripts, no external assets.
    for forbidden in ("<script", "<link", "src=", "@import"):
        assert forbidden not in document

    bare = build_report_html({}, {}, {})
    for marker in ('id="trace-analytics"', 'id="profile"', 'id="trends"'):
        assert marker not in bare
