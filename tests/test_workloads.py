"""Workload correctness: every compiled kernel must reproduce its Python reference,
through both the unoptimised and the fully optimised pipeline."""

import pytest

from repro.core.compiler import TwillCompiler
from repro.frontend import compile_c
from repro.interp import run_module
from repro.workloads import all_workloads, get_workload

WORKLOAD_NAMES = [w.name for w in all_workloads()]


def test_registry_contains_all_eight_kernels():
    assert WORKLOAD_NAMES == sorted(["mips", "adpcm", "aes", "blowfish", "gsm", "jpeg", "mpeg2", "sha"])
    for workload in all_workloads():
        assert workload.chstone_name
        assert workload.paper_queues is not None


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_unoptimised_output_matches_reference(name):
    workload = get_workload(name)
    module = compile_c(workload.source, name)
    result = run_module(module)
    assert result.outputs == workload.expected_outputs()


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_optimised_output_matches_reference(name):
    workload = get_workload(name)
    compiler = TwillCompiler()
    module = compiler.compile_module(workload.source, name)
    result = run_module(module)
    assert result.outputs == workload.expected_outputs()


@pytest.mark.parametrize("name", ["mips", "sha", "gsm"])
def test_full_pipeline_on_selected_workloads(name):
    """End-to-end compile_and_simulate on a few kernels (the rest are covered
    by the benchmark harness to keep the unit-test suite fast)."""
    workload = get_workload(name)
    compiler = TwillCompiler()
    result = compiler.compile_and_simulate(workload.source, name=name)
    assert result.outputs == workload.expected_outputs()
    system = result.system
    assert system.speedup_vs_software > 1.0
    assert result.dswp.partitioning.total_queues >= 1
    assert result.dswp.partitioning.hardware_thread_count >= 1
    assert system.twill.timing.forced_events == 0
