"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_c
from repro.transforms import default_pipeline


SMALL_PROGRAM = """
int data[32];
int accumulate(int n) {
  int i;
  int total = 0;
  for (i = 0; i < n; i++) { total += data[i]; }
  return total;
}
int main(void) {
  int i;
  for (i = 0; i < 32; i++) { data[i] = i * 3 - 7; }
  print_int(accumulate(32));
  return accumulate(32);
}
"""

PIPELINE_PROGRAM = """
int input[48];
int stage1[48];
int stage2[48];
int main(void) {
  int i;
  int acc = 0;
  for (i = 0; i < 48; i++) { input[i] = (i * 11 + 5) % 63; }
  for (i = 0; i < 48; i++) { stage1[i] = (input[i] * 13) % 127; }
  for (i = 0; i < 48; i++) { stage2[i] = stage1[i] ^ (stage1[i] >> 2); acc += stage2[i]; }
  print_int(acc);
  return acc;
}
"""


@pytest.fixture
def small_module():
    """The small two-function program, lowered but not optimised."""
    return compile_c(SMALL_PROGRAM, "small")


@pytest.fixture
def optimized_small_module():
    """The small program after the full default pass pipeline."""
    module = compile_c(SMALL_PROGRAM, "small")
    default_pipeline().run(module)
    return module


@pytest.fixture
def pipeline_module():
    """A three-stage streaming program (good DSWP fodder), optimised."""
    module = compile_c(PIPELINE_PROGRAM, "pipeline")
    default_pipeline().run(module)
    return module
