"""Tests for the IR data structures, analyses and transform passes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import CallGraph, DominatorTree, LoopInfo, PostDominatorTree
from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.errors import UnsupportedFeatureError, VerificationError
from repro.frontend import compile_c
from repro.interp import run_module
from repro.ir import (
    I32,
    BasicBlock,
    Branch,
    CmpPredicate,
    Constant,
    Function,
    FunctionType,
    IntType,
    IRBuilder,
    Module,
    Opcode,
    Return,
    evaluate_binary,
    evaluate_icmp,
    verify_module,
)
from repro.transforms import (
    ConstantPropagation,
    DeadCodeElimination,
    FunctionInliner,
    GlobalsToArguments,
    PromoteMemoryToRegisters,
    SimplifyCFG,
    default_pipeline,
)
from tests.conftest import SMALL_PROGRAM, PIPELINE_PROGRAM


# ---------------------------------------------------------------------------
# IR construction and invariants
# ---------------------------------------------------------------------------


class TestIRBasics:
    def _make_function(self):
        module = Module("t")
        fn = module.create_function("f", FunctionType(I32, (I32,)), ["x"])
        entry = fn.create_block("entry")
        builder = IRBuilder(entry)
        return module, fn, builder

    def test_use_def_chains(self):
        module, fn, builder = self._make_function()
        x = fn.args[0]
        a = builder.add(x, 1)
        b = builder.mul(a, a)
        builder.ret(b)
        assert a in [op for op in b.operands]
        assert len(a.uses) == 2
        assert b.users == [fn.blocks[0].terminator]

    def test_replace_all_uses_with(self):
        module, fn, builder = self._make_function()
        x = fn.args[0]
        a = builder.add(x, 1)
        b = builder.mul(a, 2)
        builder.ret(b)
        c = Constant(I32, 7)
        a.replace_all_uses_with(c)
        assert not a.is_used()
        assert b.operands[0] is c

    def test_verifier_catches_missing_terminator(self):
        module, fn, builder = self._make_function()
        builder.add(fn.args[0], 1)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_verifier_catches_bad_call_arity(self):
        module = Module("t")
        callee = module.create_function("callee", FunctionType(I32, (I32, I32)), ["a", "b"])
        caller = module.create_function("caller", FunctionType(I32, ()))
        block = caller.create_block("entry")
        builder = IRBuilder(block)
        from repro.ir.instructions import Call

        call = Call(callee, [Constant(I32, 1)])
        block.append(call)
        builder.ret(call)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_constant_wrapping(self):
        assert Constant(I32, 2**31).value == -(2**31)
        assert Constant(IntType(8, False), 300).value == 44

    def test_type_wrap_round_trip(self):
        u8 = IntType(8, signed=False)
        assert u8.wrap(-1) == 255
        i16 = IntType(16, signed=True)
        assert i16.wrap(0x8000) == -0x8000


class TestFoldingSemantics:
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=200, deadline=None)
    def test_add_matches_c_semantics(self, a, b):
        expected = (a + b) & 0xFFFFFFFF
        if expected >= 2**31:
            expected -= 2**32
        assert evaluate_binary(Opcode.ADD, I32, a, b) == expected

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1).filter(lambda v: v != 0))
    @settings(max_examples=200, deadline=None)
    def test_sdiv_truncates_toward_zero(self, a, b):
        result = evaluate_binary(Opcode.SDIV, I32, a, b)
        expected = abs(a) // abs(b)
        if (a >= 0) != (b >= 0):
            expected = -expected
        assert result == I32.wrap(expected)

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(0, 31))
    @settings(max_examples=200, deadline=None)
    def test_shifts_stay_in_range(self, a, shift):
        for opcode in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            value = evaluate_binary(opcode, I32, a, shift)
            assert I32.min_value <= value <= I32.max_value

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=200, deadline=None)
    def test_icmp_total_order(self, a, b):
        lt = evaluate_icmp(CmpPredicate.SLT, I32, a, b)
        gt = evaluate_icmp(CmpPredicate.SGT, I32, a, b)
        eq = evaluate_icmp(CmpPredicate.EQ, I32, a, b)
        assert lt + gt + eq == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            evaluate_binary(Opcode.SDIV, I32, 1, 0)


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------


class TestAnalyses:
    def test_dominators_of_loop(self, optimized_small_module):
        fn = optimized_small_module.get_function("main")
        domtree = DominatorTree(fn)
        entry = fn.entry_block
        for block in fn.blocks:
            assert domtree.dominates(entry, block)

    def test_post_dominators(self, optimized_small_module):
        fn = optimized_small_module.get_function("main")
        postdom = PostDominatorTree(fn)
        exit_blocks = [b for b in fn.blocks if not b.successors()]
        assert exit_blocks
        for block in fn.blocks:
            assert postdom.contains(block)

    def test_loop_info_finds_loops(self, optimized_small_module):
        fn = optimized_small_module.get_function("main")
        loops = LoopInfo(fn).loops()
        assert len(loops) >= 1
        for loop in loops:
            assert loop.header in loop.blocks
            assert loop.latches

    def test_callgraph_and_recursion_detection(self):
        module = compile_c(SMALL_PROGRAM)
        cg = CallGraph(module)
        assert "accumulate" in cg.callees_of("main")
        assert cg.find_recursion() == []

        recursive = compile_c("int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); } int main(void) { return f(5); }")
        with pytest.raises(UnsupportedFeatureError):
            CallGraph(recursive).check_no_recursion()

    def test_alias_distinct_globals(self):
        module = compile_c("int a[4]; int b[4]; int main(void) { a[0] = 1; b[0] = 2; return a[0]; }")
        fn = module.get_function("main")
        stores = [i for i in fn.instructions() if i.opcode is Opcode.STORE]
        aa = AliasAnalysis()
        assert aa.alias(stores[0].pointer, stores[1].pointer) is AliasResult.NO

    def test_alias_same_array_unknown_index(self):
        module = compile_c(
            "int a[4]; int main(void) { int i; for (i=0;i<2;i++){ a[i]=1; a[i+1]=2; } return a[0]; }"
        )
        fn = module.get_function("main")
        stores = [
            i
            for i in fn.instructions()
            if i.opcode is Opcode.STORE and i.pointer.opcode is Opcode.GEP
        ]
        aa = AliasAnalysis()
        assert aa.may_alias(stores[0].pointer, stores[1].pointer)


# ---------------------------------------------------------------------------
# Transform passes: each pass must preserve program behaviour
# ---------------------------------------------------------------------------


def _outputs(module):
    return run_module(module).outputs


class TestTransforms:
    @pytest.mark.parametrize(
        "pass_factory",
        [
            PromoteMemoryToRegisters,
            SimplifyCFG,
            DeadCodeElimination,
            ConstantPropagation,
            lambda: FunctionInliner(threshold=100),
            GlobalsToArguments,
        ],
        ids=["mem2reg", "simplifycfg", "dce", "constprop", "inline", "globals-to-args"],
    )
    def test_pass_preserves_behaviour(self, pass_factory):
        module = compile_c(PIPELINE_PROGRAM)
        before = _outputs(module)
        pass_factory().run(module)
        verify_module(module)
        assert _outputs(module) == before

    def test_full_pipeline_preserves_behaviour(self):
        module = compile_c(SMALL_PROGRAM)
        before = _outputs(module)
        default_pipeline().run(module)
        verify_module(module)
        assert _outputs(module) == before

    def test_mem2reg_removes_scalar_allocas(self):
        module = compile_c(SMALL_PROGRAM)
        PromoteMemoryToRegisters().run(module)
        fn = module.get_function("accumulate")
        allocas = [i for i in fn.instructions() if i.opcode is Opcode.ALLOCA]
        assert allocas == []

    def test_constprop_folds_constants(self):
        module = compile_c("int main(void) { return (3 + 4) * 2; }")
        PromoteMemoryToRegisters().run(module)
        ConstantPropagation().run(module)
        fn = module.get_function("main")
        binops = [i for i in fn.instructions() if i.is_binary()]
        assert binops == []

    def test_inliner_removes_small_callee(self):
        module = compile_c(SMALL_PROGRAM)
        FunctionInliner(threshold=100).run(module)
        assert not module.has_function("accumulate")
        assert _outputs(module) == [sum(i * 3 - 7 for i in range(32))]

    def test_simplifycfg_removes_dead_blocks(self):
        module = compile_c("int main(void) { if (0) { print_int(1); } return 7; }")
        PromoteMemoryToRegisters().run(module)
        ConstantPropagation().run(module)
        SimplifyCFG().run(module)
        fn = module.get_function("main")
        assert len(fn.blocks) == 1

    def test_globals_to_args_rewrites_signatures(self):
        module = compile_c(SMALL_PROGRAM)
        GlobalsToArguments().run(module)
        accumulate = module.get_function("accumulate")
        assert any(arg.name.startswith("g_") for arg in accumulate.args)
        # main still refers to the global directly and forwards it.
        assert _outputs(module) == [sum(i * 3 - 7 for i in range(32))]
