"""Tests of the :mod:`repro.ingest` pipeline.

Covers preprocessing (quoted-include splicing, cycle/missing-include
errors, system-header skipping), ingestion determinism (same file twice →
same content digest, warm re-ingest executes zero tasks), workload
registration collisions, the corpus loader, and both CLI commands'
exit codes and byte-deterministic ``--json`` output.
"""

import json

import pytest

from repro.cli import main
from repro.errors import IngestError, ReproError
from repro.eval import EvaluationHarness
from repro.ingest import (
    default_workload_name,
    ingest_file,
    ingest_source,
    load_corpus,
    preprocess_source,
)
from repro.workloads.base import WorkloadRegistry

CLEAN = """\
#define ROUNDS 4
int main(void) {
  int i;
  int acc = 7;
  for (i = 0; i < ROUNDS; i++) { acc = (acc * 3 + i) & 255; print_int(acc); }
  return acc;
}
"""

BROKEN = """\
int main(void) {
  int x = ;
  return 0;
}
"""


@pytest.fixture
def scratch_registry():
    """Unregister every workload a test ingests, restoring the builtin set."""
    before = set(WorkloadRegistry.names())
    yield
    for name in set(WorkloadRegistry.names()) - before:
        WorkloadRegistry.unregister(name)


def run_cli(argv, tmp_path, capsys):
    code = main(list(argv) + ["--cache-dir", str(tmp_path / "cache")])
    out, err = capsys.readouterr()
    return code, out, err


# ---------------------------------------------------------------------------
# preprocessing
# ---------------------------------------------------------------------------


def test_quoted_include_is_spliced(tmp_path):
    (tmp_path / "consts.h").write_text("#define LIMIT 3\n")
    (tmp_path / "prog.c").write_text(
        '#include "consts.h"\nint main(void) { print_int(LIMIT); return 0; }\n'
    )
    pre = preprocess_source(
        (tmp_path / "prog.c").read_text(), base_dir=str(tmp_path), filename="prog.c"
    )
    assert "#define LIMIT 3" in pre.source
    assert any(inc.endswith("consts.h") for inc in pre.includes)


def test_system_include_is_skipped_with_a_marker(tmp_path):
    pre = preprocess_source(
        "#include <stdio.h>\nint main(void) { return 0; }\n", base_dir=str(tmp_path)
    )
    assert pre.skipped_includes == ("stdio.h",)
    # The directive is replaced by a comment marker, not left for the lexer.
    marker = [line for line in pre.source.splitlines() if "stdio.h" in line]
    assert marker and marker[0].startswith("/*") and "skipped" in marker[0]


def test_include_cycle_is_reported(tmp_path):
    (tmp_path / "a.h").write_text('#include "b.h"\n')
    (tmp_path / "b.h").write_text('#include "a.h"\n')
    with pytest.raises(IngestError, match="cycle"):
        preprocess_source('#include "a.h"\n', base_dir=str(tmp_path))


def test_missing_include_is_reported(tmp_path):
    with pytest.raises(IngestError, match="nope.h"):
        preprocess_source('#include "nope.h"\nint main(void) { return 0; }\n',
                          base_dir=str(tmp_path))


def test_default_workload_name_sanitises():
    assert default_workload_name("/tmp/My Prog-1.c") == "My_Prog_1"
    assert default_workload_name("3fish.c") == "c_3fish"


# ---------------------------------------------------------------------------
# ingestion + registration
# ---------------------------------------------------------------------------


def test_ingest_round_trip_is_deterministic(tmp_path, scratch_registry):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    report1, workload = ingest_file(str(path), name="rt_demo")
    WorkloadRegistry.unregister("rt_demo")
    report2, _ = ingest_file(str(path), name="rt_demo")
    assert report1.ok and report2.ok
    assert report1.digest == report2.digest
    assert report1.to_dict() == report2.to_dict()
    assert workload.source_digest() == report1.digest
    assert workload.origin == "ingested"
    assert workload.expected_outputs() == list(report1.outputs)


def test_warm_reingest_executes_zero_tasks(tmp_path, scratch_registry):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    harness = EvaluationHarness(benchmarks=[], cache_dir=str(tmp_path / "cache"))
    report1, _ = ingest_file(str(path), name="warm_demo", harness=harness)
    assert harness.last_stats["executed"] == {"ingest": 1}
    WorkloadRegistry.unregister("warm_demo")
    report2, _ = ingest_file(str(path), name="warm_demo", harness=harness)
    assert harness.last_stats["executed"] == {}
    assert report1.to_dict() == report2.to_dict()


def test_malformed_ingest_reports_diagnostics(tmp_path, scratch_registry):
    path = tmp_path / "broken.c"
    path.write_text(BROKEN)
    report, workload = ingest_file(str(path))
    assert not report.ok
    assert workload is None
    assert "broken" not in WorkloadRegistry.names()
    rendered = [d.format() for d in report.diagnostics]
    assert any("unexpected token ';'" in line for line in rendered)


def test_same_name_different_source_collides(scratch_registry):
    _, first = ingest_source(CLEAN, name="collide")
    assert first is not None
    other = CLEAN.replace("acc = 7", "acc = 8")
    with pytest.raises(ReproError, match="--name"):
        ingest_source(other, name="collide")
    # Re-ingesting the identical source is idempotent, not an error.
    _, again = ingest_source(CLEAN, name="collide")
    assert again is first


def test_load_corpus_registers_everything(scratch_registry):
    reports = load_corpus("tests/corpus")
    assert len(reports) >= 4
    for report in reports:
        assert report.ok
        workload = WorkloadRegistry.get(report.name)
        assert workload.origin == "ingested"
        assert len(workload.expected_outputs()) >= 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_ingest_json_is_byte_identical_cold_and_warm(tmp_path, capsys, scratch_registry):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    code1, out1, _ = run_cli(["ingest", str(path), "--name", "cli_demo", "--json"],
                             tmp_path, capsys)
    WorkloadRegistry.unregister("cli_demo")
    code2, out2, _ = run_cli(["ingest", str(path), "--name", "cli_demo", "--json"],
                             tmp_path, capsys)
    assert code1 == code2 == 0
    assert out1 == out2
    payload = json.loads(out1)
    assert payload["ok"] is True
    assert payload["name"] == "cli_demo"


def test_cli_ingest_run_hits_cache_second_time(tmp_path, capsys, scratch_registry):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    code1, out1, _ = run_cli(["ingest", str(path), "--name", "run_demo", "--run", "--json"],
                             tmp_path, capsys)
    assert code1 == 0
    cold = json.loads(out1)
    assert cold["run"]["outputs_match"] is True
    assert cold["task_stats"]["executed"].get("compile") == 1
    WorkloadRegistry.unregister("run_demo")
    code2, out2, _ = run_cli(["ingest", str(path), "--name", "run_demo", "--run", "--json"],
                             tmp_path, capsys)
    assert code2 == 0
    warm = json.loads(out2)
    assert warm["task_stats"]["executed"] == {}
    assert warm["report"] == cold["report"]
    assert warm["run"] == cold["run"]


def test_cli_ingest_malformed_exits_one(tmp_path, capsys, scratch_registry):
    path = tmp_path / "broken.c"
    path.write_text(BROKEN)
    code, out, _ = run_cli(["ingest", str(path)], tmp_path, capsys)
    assert code == 1
    assert "error:" in out


def test_cli_ingest_missing_file_exits_two(tmp_path, capsys):
    code, _, err = run_cli(["ingest", str(tmp_path / "absent.c")], tmp_path, capsys)
    assert code == 2
    assert "error" in err.lower()


def test_cli_difftest_single_builtin(tmp_path, capsys):
    code, out, _ = run_cli(["difftest", "blowfish", "--corpus", "none"], tmp_path, capsys)
    assert code == 0
    assert "blowfish" in out
    assert "FAIL" not in out


def test_cli_difftest_unknown_workload_exits_two(tmp_path, capsys):
    code, _, err = run_cli(["difftest", "nosuchthing", "--corpus", "none"], tmp_path, capsys)
    assert code == 2
    assert "unknown workload" in err
