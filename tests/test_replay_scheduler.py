"""Byte-identity tests: readiness-driven replay engine vs the poll engine.

The heap-scheduled ``ready`` engine replaced the original cooperative
round-robin ``poll`` engine on the hot path; the legacy engine stays
selectable (``REPRO_REPLAY=poll`` or ``simulate(..., engine="poll")``).
Both must produce the *same* :class:`~repro.sim.timing.TimingResult` —
not approximately, but field-for-field across every thread timeline —
on every assignment shape the system simulates (pure SW, pure HW, and
the DSWP-partitioned Twill configuration), across queue-depth extremes.
"""

import dataclasses
import os

import pytest

from repro.config import RuntimeConfig
from repro.dswp import run_dswp
from repro.frontend import compile_c
from repro.interp import Profile, run_module
from repro.sim import ThreadAssignment, TimingSimulator
from repro.sim.timing import REPLAY_ENGINE_ENV
from repro.transforms import GlobalsToArguments, default_pipeline
from repro.workloads import get_workload
from tests.conftest import PIPELINE_PROGRAM

WORKLOADS = ("blowfish", "mips")


def _compiled(source, name="program"):
    module = compile_c(source, name)
    default_pipeline().run(module)
    GlobalsToArguments().run(module)
    execution = run_module(module, record_trace=True)
    profile = Profile.from_trace(module, execution.trace)
    dswp = run_dswp(module, profile=profile)
    return module, execution, dswp


def _as_comparable(result):
    """A TimingResult as plain data — deep equality over every field."""
    return dataclasses.asdict(result)


def _assignments(module, dswp):
    return {
        "pure_sw": ThreadAssignment.pure_software(module),
        "pure_hw": ThreadAssignment.pure_hardware(module),
        "twill": ThreadAssignment.from_partitioning(module, dswp.partitioning),
    }


@pytest.fixture(scope="module")
def pipeline():
    return _compiled(PIPELINE_PROGRAM, "pipeline")


def test_engines_identical_on_pipeline(pipeline):
    module, execution, dswp = pipeline
    sim = TimingSimulator()
    for label, assignment in _assignments(module, dswp).items():
        ready = sim.simulate(execution.trace, assignment, engine="ready")
        poll = sim.simulate(execution.trace, assignment, engine="poll")
        assert _as_comparable(ready) == _as_comparable(poll), label
        assert ready.forced_events == 0, label
        assert ready.replay_outputs == poll.replay_outputs


@pytest.mark.parametrize("name", WORKLOADS)
def test_engines_identical_on_workloads(name):
    module, execution, dswp = _compiled(get_workload(name).source, name)
    sim = TimingSimulator()
    for label, assignment in _assignments(module, dswp).items():
        ready = sim.simulate(execution.trace, assignment, engine="ready")
        poll = sim.simulate(execution.trace, assignment, engine="poll")
        assert _as_comparable(ready) == _as_comparable(poll), f"{name}/{label}"
        assert ready.forced_events == 0, f"{name}/{label}"


def test_engines_identical_across_queue_depths(pipeline):
    """Back-pressure is where the schedulers' orderings could diverge."""
    module, execution, dswp = pipeline
    assignment = ThreadAssignment.from_partitioning(module, dswp.partitioning)
    for depth in (1, 2, 64):
        sim = TimingSimulator(RuntimeConfig(queue_depth=depth))
        ready = sim.simulate(execution.trace, assignment, engine="ready")
        poll = sim.simulate(execution.trace, assignment, engine="poll")
        assert _as_comparable(ready) == _as_comparable(poll), f"depth={depth}"


def test_env_selects_engine(pipeline, monkeypatch):
    module, execution, dswp = pipeline
    assignment = ThreadAssignment.from_partitioning(module, dswp.partitioning)
    sim = TimingSimulator()

    monkeypatch.setenv(REPLAY_ENGINE_ENV, "poll")
    via_env = sim.simulate(execution.trace, assignment)
    explicit = sim.simulate(execution.trace, assignment, engine="poll")
    assert _as_comparable(via_env) == _as_comparable(explicit)

    monkeypatch.setenv(REPLAY_ENGINE_ENV, "bogus")
    with pytest.raises(ValueError, match="unknown replay engine"):
        sim.simulate(execution.trace, assignment)

    monkeypatch.delenv(REPLAY_ENGINE_ENV)
    default = sim.simulate(execution.trace, assignment)
    ready = sim.simulate(execution.trace, assignment, engine="ready")
    assert _as_comparable(default) == _as_comparable(ready)
