"""Differential tests: table-driven parser vs the recursive-descent reference.

The LL(1) :class:`~repro.frontend.tableparser.TableParser` replaced the
original :class:`~repro.frontend.parser.RecursiveDescentParser` on the hot
path; the old implementation stays selectable via ``REPRO_PARSER=rd``.  Both
must produce structurally identical ASTs (the nodes are plain dataclasses,
so ``==`` is deep structural equality) and, in recovery mode, identical
diagnostic streams — over every builtin workload, the committed C corpus,
and a few hundred deterministic fuzz programs.
"""

import os
import sys

import pytest

from repro.frontend.ast_nodes import TranslationUnit
from repro.errors import FrontendError
from repro.frontend.diagnostics import parse_with_diagnostics
from repro.frontend.lexer import tokenize
from repro.frontend.parser import (
    PARSER_ENV,
    Parser,
    RecursiveDescentParser,
    active_parser_class,
)
from repro.frontend.tableparser import TableParser
from repro.workloads import all_workloads

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS_DIR = os.path.join(REPO_ROOT, "tests", "corpus")
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from fuzz_csubset import generate_program  # noqa: E402

FUZZ_SEEDS = range(200)


def _parse_both(source):
    """Parse *source* with both implementations; returns (rd_unit, table_unit)."""
    rd = RecursiveDescentParser(tokenize(source)).parse_translation_unit()
    table = TableParser(tokenize(source)).parse_translation_unit()
    return rd, table


def _corpus_files():
    return sorted(
        name for name in os.listdir(CORPUS_DIR) if name.endswith(".c")
    )


# ---------------------------------------------------------------------------
# clean-input AST equality
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "workload", all_workloads(), ids=lambda w: w.name
)
def test_workloads_parse_identically(workload):
    rd, table = _parse_both(workload.source)
    assert isinstance(table, TranslationUnit)
    assert rd == table


@pytest.mark.parametrize("filename", _corpus_files())
def test_corpus_parses_identically(filename):
    with open(os.path.join(CORPUS_DIR, filename), "r", encoding="utf-8") as fh:
        source = fh.read()
    rd, table = _parse_both(source)
    assert rd == table


def test_fuzz_programs_parse_identically():
    """Two hundred deterministic fuzz programs, one assertion each.

    The generator is seeded, so a failure here reproduces exactly with
    ``generate_program(seed)`` — the assertion message names the seed.
    """
    for seed in FUZZ_SEEDS:
        source = generate_program(seed)
        rd, table = _parse_both(source)
        assert rd == table, f"parser divergence at fuzz seed {seed}"


# ---------------------------------------------------------------------------
# error paths: exceptions and recovery diagnostics must match
# ---------------------------------------------------------------------------

BROKEN_SNIPPETS = [
    # missing semicolon
    "int main() { int x = 1 return x; }",
    # unbalanced brace
    "int main() { if (1) { return 0; }",
    # bad top-level token
    "return 3;",
    # declaration with missing initialiser expression
    "int main() { int x = ; return 0; }",
    # unbalanced parenthesis inside an expression
    "int f(int a) { return (a; }",
    # two errors in one file (recovery must resync identically)
    "int f() { int = 3; }\nint g() { return 1 1; }",
    # unterminated call argument list
    "int f(int a) { return f(a; }",
    # type keyword where an expression is required
    "int main() { return int; }",
]


@pytest.mark.parametrize("source", BROKEN_SNIPPETS)
def test_broken_input_same_error(source):
    """In strict mode both parsers raise, with the same message and position."""
    with pytest.raises(FrontendError) as rd_exc:
        RecursiveDescentParser(tokenize(source)).parse_translation_unit()
    with pytest.raises(FrontendError) as table_exc:
        TableParser(tokenize(source)).parse_translation_unit()
    assert str(table_exc.value) == str(rd_exc.value)


@pytest.mark.parametrize("source", BROKEN_SNIPPETS)
def test_broken_input_same_diagnostics(source, monkeypatch):
    """In recovery mode both parsers emit the same diagnostic stream."""
    monkeypatch.setenv(PARSER_ENV, "rd")
    rd_unit, rd_diags = parse_with_diagnostics(source, "snippet.c")
    monkeypatch.delenv(PARSER_ENV)
    table_unit, table_diags = parse_with_diagnostics(source, "snippet.c")
    assert rd_diags, "snippet unexpectedly parsed clean"
    assert [d.format() for d in table_diags] == [d.format() for d in rd_diags]
    assert table_unit == rd_unit


# ---------------------------------------------------------------------------
# implementation selection
# ---------------------------------------------------------------------------


def test_env_selects_parser(monkeypatch):
    monkeypatch.delenv(PARSER_ENV, raising=False)
    assert active_parser_class() is TableParser
    for alias in ("rd", "recursive", "legacy"):
        monkeypatch.setenv(PARSER_ENV, alias)
        assert active_parser_class() is RecursiveDescentParser
    monkeypatch.setenv(PARSER_ENV, "table")
    assert active_parser_class() is TableParser


def test_parser_factory_honours_env(monkeypatch):
    tokens = tokenize("int main() { return 0; }")
    monkeypatch.setenv(PARSER_ENV, "rd")
    assert isinstance(Parser(tokens), RecursiveDescentParser)
    monkeypatch.delenv(PARSER_ENV)
    assert isinstance(Parser(tokens), TableParser)
