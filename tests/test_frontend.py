"""Tests for the C front end: lexer, parser, lowering."""

import pytest

from repro.errors import LexerError, ParseError, SemanticError, UnsupportedFeatureError
from repro.frontend import compile_c, parse, tokenize
from repro.frontend.lexer import TokenKind
from repro.frontend.ast_nodes import ForStmt, FunctionDef, IfStmt, ReturnStmt, WhileStmt
from repro.interp import run_module
from repro.ir import print_module, verify_module


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("int foo unsigned bar")
        kinds = [t.kind for t in tokens]
        assert kinds[:4] == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.KEYWORD, TokenKind.IDENT]
        assert tokens[-1].kind is TokenKind.EOF

    def test_integer_literals(self):
        tokens = tokenize("42 0x1F 0 123456789")
        values = [t.value for t in tokens if t.kind is TokenKind.INT_LITERAL]
        assert values == [42, 0x1F, 0, 123456789]

    def test_integer_suffixes_ignored(self):
        tokens = tokenize("100u 200U 3000000000u")
        values = [t.value for t in tokens if t.kind is TokenKind.INT_LITERAL]
        assert values == [100, 200, 3000000000]

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\0'")
        values = [t.value for t in tokens if t.kind is TokenKind.CHAR_LITERAL]
        assert values == [ord("a"), 10, 0]

    def test_comments_are_skipped(self):
        tokens = tokenize("int /* block */ x; // line\nint y;")
        idents = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert idents == ["x", "y"]

    def test_define_macro_expansion(self):
        tokens = tokenize("#define SIZE 16\nint a[SIZE];")
        values = [t.value for t in tokens if t.kind is TokenKind.INT_LITERAL]
        assert values == [16]

    def test_multi_char_punctuators(self):
        tokens = tokenize("a <<= b >> c != d")
        puncts = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
        assert puncts == ["<<=", ">>", "!="]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("int x; /* oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("int x = `1;")


class TestParser:
    def test_function_and_global(self):
        unit = parse("int g = 3;\nint f(int a) { return a + g; }")
        assert len(unit.globals) == 1 and unit.globals[0].name == "g"
        assert len(unit.functions) == 1 and unit.functions[0].name == "f"
        assert len(unit.functions[0].params) == 1

    def test_array_globals_with_initializer(self):
        unit = parse("int table[4] = {1, 2, 3, 4};")
        decl = unit.globals[0]
        assert decl.type.array_dims == [4]
        assert isinstance(decl.init, list) and len(decl.init) == 4

    def test_two_dimensional_array(self):
        unit = parse("int grid[3][5];")
        assert unit.globals[0].type.array_dims == [3, 5]

    def test_statement_kinds(self):
        unit = parse(
            "int f(void) { int i; if (i) { i = 1; } else { i = 2; } "
            "while (i) { i--; } for (i = 0; i < 3; i++) { } do { i++; } while (i < 5); return i; }"
        )
        body = unit.functions[0].body.body
        kinds = [type(s).__name__ for s in body]
        assert "IfStmt" in kinds and "WhileStmt" in kinds and "ForStmt" in kinds and "DoWhileStmt" in kinds

    def test_operator_precedence(self):
        from repro.frontend.parser import evaluate_constant_expr
        unit = parse("int x = 2 + 3 * 4;")
        assert evaluate_constant_expr(unit.globals[0].init) == 14

    def test_precedence_shift_vs_add(self):
        from repro.frontend.parser import evaluate_constant_expr
        unit = parse("int x = 1 << 2 + 1;")
        assert evaluate_constant_expr(unit.globals[0].init) == 8

    def test_ternary_constant(self):
        from repro.frontend.parser import evaluate_constant_expr
        unit = parse("int x = 1 ? 10 : 20;")
        assert evaluate_constant_expr(unit.globals[0].init) == 10

    def test_array_parameter_decays_to_pointer(self):
        unit = parse("int f(int a[], int n) { return a[0] + n; }")
        assert unit.functions[0].params[0].type.is_pointer()

    def test_struct_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("struct point { int x; };")

    def test_float_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("float f(void) { return 1; }")

    def test_long_long_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("long long x;")

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse("int f(void) { return 1 }")


class TestLowering:
    def test_module_verifies(self, small_module):
        verify_module(small_module)
        assert small_module.has_function("main")
        assert small_module.has_global("data")

    def test_printable(self, small_module):
        text = print_module(small_module)
        assert "define i32 @main()" in text
        assert "@data" in text

    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError):
            compile_c("int main(void) { return missing; }")

    def test_undeclared_function(self):
        with pytest.raises(SemanticError):
            compile_c("int main(void) { return missing(); }")

    def test_redefined_function(self):
        with pytest.raises(SemanticError):
            compile_c("int f(void) { return 1; } int f(void) { return 2; }")

    def test_execution_of_control_flow(self):
        src = """
        int main(void) {
          int i; int evens = 0; int odds = 0;
          for (i = 0; i < 10; i++) {
            if (i % 2 == 0) { evens++; } else { odds++; }
          }
          print_int(evens); print_int(odds);
          return evens * 100 + odds;
        }
        """
        result = run_module(compile_c(src))
        assert result.outputs == [5, 5]
        assert result.return_value == 505

    def test_switch_with_fallthrough(self):
        src = """
        int classify(int v) {
          int r = 0;
          switch (v) {
            case 0:
            case 1: r = 10; break;
            case 2: r = 20; break;
            default: r = 99;
          }
          return r;
        }
        int main(void) {
          print_int(classify(0)); print_int(classify(1));
          print_int(classify(2)); print_int(classify(7));
          return 0;
        }
        """
        result = run_module(compile_c(src))
        assert result.outputs == [10, 10, 20, 99]

    def test_short_circuit_evaluation(self):
        src = """
        int calls;
        int bump(void) { calls = calls + 1; return 1; }
        int main(void) {
          calls = 0;
          if (0 && bump()) { }
          if (1 || bump()) { }
          print_int(calls);
          return calls;
        }
        """
        result = run_module(compile_c(src))
        assert result.outputs == [0]

    def test_unsigned_shift_semantics(self):
        src = """
        unsigned int v = 2147483648u;
        int main(void) {
          print_int(v >> 31);
          return 0;
        }
        """
        result = run_module(compile_c(src))
        assert result.outputs == [1]

    def test_two_dimensional_array_access(self):
        src = """
        int grid[3][4];
        int main(void) {
          int r; int c; int sum = 0;
          for (r = 0; r < 3; r++) {
            for (c = 0; c < 4; c++) { grid[r][c] = r * 10 + c; }
          }
          for (r = 0; r < 3; r++) { sum += grid[r][3]; }
          print_int(sum);
          return sum;
        }
        """
        result = run_module(compile_c(src))
        assert result.outputs == [3 + 13 + 23]

    def test_pointer_parameter_writeback(self):
        src = """
        void fill(int buf[], int n) {
          int i;
          for (i = 0; i < n; i++) { buf[i] = i * i; }
        }
        int scratch[6];
        int main(void) {
          int i; int sum = 0;
          fill(scratch, 6);
          for (i = 0; i < 6; i++) { sum += scratch[i]; }
          print_int(sum);
          return sum;
        }
        """
        result = run_module(compile_c(src))
        assert result.outputs == [0 + 1 + 4 + 9 + 16 + 25]

    def test_ternary_and_compound_assignment(self):
        src = """
        int main(void) {
          int a = 5;
          int b = a > 3 ? 100 : 200;
          a += b; a <<= 1; a ^= 7;
          print_int(a);
          return a;
        }
        """
        expected = ((5 + 100) << 1) ^ 7
        result = run_module(compile_c(src))
        assert result.outputs == [expected]
