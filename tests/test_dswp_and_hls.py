"""Tests for the DSWP partitioner, queue allocation, thread extraction and HLS."""

import pytest

from repro.config import HLSConfig, PartitionConfig
from repro.dswp import run_dswp
from repro.dswp.partitioner import DSWPPartitioner, PartitionKind
from repro.dswp.queues import allocate_queues, find_cross_partition_deps
from repro.dswp.loop_matching import LoopMatchCase, classify_loop_match
from repro.analysis import LoopInfo
from repro.frontend import compile_c
from repro.hls import AreaModel, HLSScheduler, LegUpFlow, bind_function
from repro.interp import Profile, run_module
from repro.ir import Opcode, verify_module
from repro.pdg import WeightModel, build_pdg
from repro.transforms import GlobalsToArguments, default_pipeline
from tests.conftest import PIPELINE_PROGRAM


def _prepare(source):
    module = compile_c(source)
    default_pipeline().run(module)
    GlobalsToArguments().run(module)
    result = run_module(module, record_trace=True)
    profile = Profile.from_trace(module, result.trace)
    return module, profile


class TestPartitioner:
    def test_partition_respects_scc_atomicity(self, pipeline_module):
        result = run_module(pipeline_module, record_trace=True)
        profile = Profile.from_trace(pipeline_module, result.trace)
        partitioner = DSWPPartitioner(WeightModel(profile))
        fn = pipeline_module.get_function("main")
        pdg = build_pdg(fn)
        fp = partitioner.partition_function(fn, pdg, num_partitions=3, sw_fraction=0.25)
        for scc in fp.components:
            partitions = {fp.assignment[id(i)] for i in scc.instructions}
            assert len(partitions) == 1, "an SCC was split across partitions"

    def test_cross_partition_edges_are_forward(self, pipeline_module):
        result = run_module(pipeline_module, record_trace=True)
        profile = Profile.from_trace(pipeline_module, result.trace)
        partitioner = DSWPPartitioner(WeightModel(profile))
        fn = pipeline_module.get_function("main")
        pdg = build_pdg(fn)
        fp = partitioner.partition_function(fn, pdg, num_partitions=3, sw_fraction=0.25)
        from repro.pdg.graph import DependenceKind

        for edge in pdg.edges:
            if edge.kind is not DependenceKind.DATA:
                continue
            src = fp.assignment[id(edge.tail)]
            dst = fp.assignment[id(edge.head)]
            assert src <= dst, "data must only flow forwards along the pipeline"

    def test_partition_zero_is_software_master(self, pipeline_module):
        result = run_module(pipeline_module, record_trace=True)
        profile = Profile.from_trace(pipeline_module, result.trace)
        partitioner = DSWPPartitioner(WeightModel(profile))
        fn = pipeline_module.get_function("main")
        fp = partitioner.partition_function(fn, build_pdg(fn), num_partitions=3, sw_fraction=0.25)
        assert fp.partitions[0].kind is PartitionKind.SOFTWARE
        assert fp.master_partition() is fp.partitions[0]

    def test_every_instruction_assigned(self, pipeline_module):
        result = run_module(pipeline_module, record_trace=True)
        profile = Profile.from_trace(pipeline_module, result.trace)
        partitioner = DSWPPartitioner(WeightModel(profile))
        fn = pipeline_module.get_function("main")
        fp = partitioner.partition_function(fn, build_pdg(fn), num_partitions=4, sw_fraction=0.3)
        assert len(fp.assignment) == fn.instruction_count()

    def test_single_partition_allowed(self, pipeline_module):
        result = run_module(pipeline_module, record_trace=True)
        profile = Profile.from_trace(pipeline_module, result.trace)
        partitioner = DSWPPartitioner(WeightModel(profile))
        fn = pipeline_module.get_function("main")
        fp = partitioner.partition_function(fn, build_pdg(fn), num_partitions=1, sw_fraction=1.0)
        assert len(fp.partitions) == 1


class TestQueuesAndExtraction:
    def test_queue_allocation_granularity(self, pipeline_module):
        result = run_module(pipeline_module, record_trace=True)
        profile = Profile.from_trace(pipeline_module, result.trace)
        partitioner = DSWPPartitioner(WeightModel(profile))
        fn = pipeline_module.get_function("main")
        fp = partitioner.partition_function(fn, build_pdg(fn), num_partitions=3, sw_fraction=0.25)
        allocation = allocate_queues(fp)
        keys = {(id(q.value), q.consumer_partition) for q in allocation.queues}
        assert len(keys) == len(allocation.queues), "one queue per (value, consumer)"
        for dep in allocation.deps:
            assert dep.producer_partition != dep.consumer_partition

    def test_loop_matching_cases(self):
        module = compile_c(
            """
            int src[8]; int dst[8];
            int main(void) {
              int i; int j; int seed = 3; int total = 0;
              for (i = 0; i < 8; i++) { src[i] = seed * (i + 1); }
              for (j = 0; j < 8; j++) { total += src[j]; }
              print_int(total);
              return total;
            }
            """
        )
        default_pipeline().run(module)
        fn = module.get_function("main")
        loop_info = LoopInfo(fn)
        loops = loop_info.loops()
        assert len(loops) == 2
        first_loop, second_loop = loops[0], loops[1]
        store = next(i for i in fn.instructions() if i.opcode is Opcode.STORE)
        load = next(i for i in fn.instructions() if i.opcode is Opcode.LOAD)
        case = classify_loop_match(store, load, loop_info)
        assert case is LoopMatchCase.DISTINCT_LOOPS

    def test_run_dswp_and_extraction_verify(self):
        module, profile = _prepare(PIPELINE_PROGRAM)
        dswp = run_dswp(module, profile=profile, extract_threads=True)
        verify_module(module)
        summary = dswp.summary()
        assert summary["hw_threads"] >= 1
        assert summary["queues"] >= 1
        extraction = dswp.partitioning.extractions.get("main")
        assert extraction is not None
        thread_names = [t.function.name for t in extraction.threads]
        assert all(name.startswith("main_dswp_") for name in thread_names)
        # Every queue written by one thread is read by another.
        writes = set()
        reads = set()
        for t in extraction.threads:
            writes.update(t.queue_writes)
            reads.update(t.queue_reads)
        assert writes and reads

    def test_sw_fraction_sweep_changes_partitioning(self):
        module, profile = _prepare(PIPELINE_PROGRAM)
        low = run_dswp(module, profile=profile, sw_fraction=0.05).summary()
        high = run_dswp(module, profile=profile, sw_fraction=0.75).summary()
        assert low["queues"] >= 0 and high["queues"] >= 0
        # A larger targeted SW share cannot shrink the SW share achieved.
        assert high["sw_fraction"] >= low["sw_fraction"] - 1e-9


class TestHLS:
    def test_schedule_respects_dependences(self, pipeline_module):
        fn = pipeline_module.get_function("main")
        scheduler = HLSScheduler(HLSConfig())
        schedule = scheduler.schedule_function(fn)
        for block in fn.blocks:
            sched = schedule.blocks[block.name]
            in_block = {id(i) for i in block.instructions}
            for inst in block.instructions:
                for op in inst.operands:
                    if id(op) in in_block and not op.is_phi():
                        assert sched.start_cycle[id(op)] <= sched.start_cycle[id(inst)]

    def test_issue_width_limits_parallelism(self):
        module = compile_c(
            "int a[16]; int main(void){ int i; int s=0; for(i=0;i<16;i++){ s += a[i]*3 + i*7 - (i^5); } return s; }"
        )
        default_pipeline().run(module)
        fn = module.get_function("main")
        wide = HLSScheduler(HLSConfig(issue_width=8)).schedule_function(fn)
        narrow = HLSScheduler(HLSConfig(issue_width=1)).schedule_function(fn)
        assert narrow.total_latency_estimate() >= wide.total_latency_estimate()

    def test_binding_sharing_reduces_units(self, pipeline_module):
        fn = pipeline_module.get_function("main")
        schedule = HLSScheduler().schedule_function(fn)
        shared = bind_function(schedule, share_resources=True)
        unshared = bind_function(schedule, share_resources=False)
        total_shared = sum(shared.units.values())
        total_unshared = sum(unshared.units.values())
        assert total_shared <= total_unshared

    def test_area_model_components(self):
        model = AreaModel()
        runtime = model.runtime_area(num_queues=10, num_semaphores=2, num_hw_threads=3)
        assert runtime.luts > 0 and runtime.dsps >= 10
        assert runtime.detail["queues"] == 10 * model.primitives.queue_luts(8, 32)
        mb = model.microblaze_area()
        assert mb.brams == 16

    def test_queue_area_scales_with_geometry(self):
        from repro.costmodel.hardware import RUNTIME_PRIMITIVE_AREA as P

        assert P.queue_luts(8, 32) == 65
        assert P.queue_luts(32, 32) > P.queue_luts(8, 32)
        assert P.queue_luts(8, 8) < P.queue_luts(8, 32)

    def test_legup_flow_covers_all_functions(self, pipeline_module):
        result = LegUpFlow().run(pipeline_module)
        defined = {f.name for f in pipeline_module.defined_functions()}
        assert set(result.schedules) == defined
        assert result.total_luts > 0
