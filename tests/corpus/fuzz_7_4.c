/* fuzz survivor: base seed 7, index 4 */
int tab0[16] = {109, 95, 84, 218, 10, 195, 213, 102, 89, 217, 185, 217, 144, 23, 21, 17};
int helper0(int p0, int p1, int p2) {
}
int helper1(int p0, int p1, int p2) {
}
int main(void) {
  int v0 = 84;
  int v1 = 71;
  int v2 = 16;
  switch (((tab0[((tab0[((v2) & 15)]) & 15)] != helper0((v2 << ((v2) & 15)), v2, (v2 << ((154) & 15))))) & 3) {
  case 1:
    if ((~(helper0(((306 != 0) ? v1 : v0), v0, (v0 % (((v2) & 255) | 1)))) + (((658 % (((v0) & 255) | 1)) << ((v0) & 15)))) > 77) {
    }
  }
  print_int(v0);
  print_int(v1);
  print_int(v2);
  print_int(v0 ^ v1 ^ v2);
}
