/* fuzz survivor: base seed 7, index 5 */
int helper0(int p0, int p1, int p2) {
}
int main(void) {
  int v0 = 94;
  int v1 = 90;
  int v2 = 14;
  int v3 = 5;
  print_int(v1);
  print_int(v2);
  print_int(v3);
  print_int(v0 ^ v1 ^ v2 ^ v3);
}
