/* fuzz survivor: base seed 7, index 3 */
int main(void) {
  int v0 = 63;
  int v1 = 19;
  int v2 = 65;
  print_int(v0);
  print_int(v1);
  print_int(v2);
  print_int(v0 ^ v1 ^ v2);
}
