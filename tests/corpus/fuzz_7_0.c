/* fuzz survivor: base seed 7, index 0 */
int helper0(int p0) {
}
int helper1(int p0) {
}
int main(void) {
  int v0 = 54;
  int v1 = 25;
  int v2 = 51;
  int i1_999;
  switch ((((~(v0) + ((~(v0) + (v0)))) / ((((helper0(v0) % ((((~(738) + (v1))) & 255) | 1))) & 255) | 1))) & 3) {
  default:
    if ((~(((helper1(v1) != 0) ? ((v0 != 0) ? v0 : v0) : v2)) + (((v1 % (((173) & 255) | 1)) | (v0 >> ((v1) & 15))))) > 59) {
    }
  }
  for (i1_999 = 0; i1_999 < 4; i1_999++) {
  }
  switch (((~(((~(753) + (v0)) - 443)) + ((~((~(v1) + (163))) + (774))))) & 3) {
  case 0:
    switch ((749) & 3) {
    }
    if (561 > 38) {
    }
  }
  print_int(v0);
  print_int(v1);
  print_int(v2);
  print_int(v0 ^ v1 ^ v2);
}
