/* fuzz survivor: base seed 7, index 1 */
int helper0(int p0) {
}
int helper1(int p0) {
}
int main(void) {
  int v0 = 71;
  int v1 = 79;
  int v2 = 67;
  int v3 = 92;
  int i1_875;
  for (i1_875 = 0; i1_875 < 7; i1_875++) {
    switch (((((i1_875 % (((v3) & 255) | 1)) << (((v0 << ((v2) & 15))) & 15)) / (((((~(v0) + (450)) + (~(v3) + (954)))) & 255) | 1))) & 3) {
    }
  }
  print_int(v1);
  print_int(v2);
  print_int(v3);
  print_int(v0 ^ v1 ^ v2 ^ v3);
}
