"""Round-trip tests for the structured compile-artifact codec.

``repro.eval.artifact_codec`` serialises a full :class:`CompilationResult`
into one canonical JSON document (behind a magic header) instead of a
pickle — loading it executes no code.  The contract is stronger than
"fields survive": a *decoded* result must drive every downstream consumer
(split re-simulation, partitioned timing replay, report rows) to
**byte-identical** output, because the cache serves decoded artifacts
interchangeably with freshly-computed ones.
"""

import dataclasses
import json

import pytest

from repro.config import CompilerConfig
from repro.core.compiler import TwillCompiler
from repro.errors import ReproError
from repro.eval.artifact_codec import (
    ARTIFACT_MAGIC,
    ArtifactCodecError,
    decode_compilation_result,
    encode_compilation_result,
)
from repro.eval.cache import ArtifactCache
from repro.ir.printer import print_module
from repro.sim import ThreadAssignment, TimingSimulator
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def compiled():
    compiler = TwillCompiler(CompilerConfig())
    return compiler, compiler.compile_and_simulate(
        get_workload("blowfish").source, name="blowfish"
    )


@pytest.fixture(scope="module")
def roundtripped(compiled):
    _, result = compiled
    return decode_compilation_result(encode_compilation_result(result))


def test_artifact_is_magic_plus_canonical_json(compiled):
    _, result = compiled
    data = encode_compilation_result(result)
    assert data.startswith(ARTIFACT_MAGIC)
    document = json.loads(data[len(ARTIFACT_MAGIC):].decode("utf-8"))
    assert isinstance(document, dict)
    # Canonical form: re-dumping with sorted keys reproduces the payload.
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    assert data == ARTIFACT_MAGIC + canonical.encode("utf-8")


def test_module_text_roundtrips(compiled, roundtripped):
    _, result = compiled
    assert print_module(roundtripped.module) == print_module(result.module)


def test_summary_and_outputs_roundtrip(compiled, roundtripped):
    _, result = compiled
    assert roundtripped.name == result.name
    assert roundtripped.outputs == result.outputs
    assert roundtripped.return_value == result.return_value
    assert json.dumps(roundtripped.summary_dict(), sort_keys=True) == json.dumps(
        result.summary_dict(), sort_keys=True
    )


def test_trace_and_profile_roundtrip(compiled, roundtripped):
    _, result = compiled
    original, decoded = result.execution.trace, roundtripped.execution.trace
    assert len(decoded) == len(original)
    assert decoded.truncated == original.truncated
    # Event streams must align position-by-position on everything the
    # timing simulator reads: function, dependency edges, memory effects.
    for a, b in zip(original.events, decoded.events):
        assert a.function == b.function
        assert a.opcode is b.opcode
        assert a.deps == b.deps
        assert a.mem_dep == b.mem_dep
        assert a.address == b.address
        assert a.value == b.value
    for fn, decoded_fn in zip(
        result.module.functions.values(), roundtripped.module.functions.values()
    ):
        assert roundtripped.profile.function_total(decoded_fn) == result.profile.function_total(fn)
    assert roundtripped.profile.hottest_function() == result.profile.hottest_function()


def test_decoded_result_drives_identical_resimulation(compiled, roundtripped):
    """The decisive test: downstream consumers can't tell the difference."""
    compiler, result = compiled
    for fraction in (0.1, 0.5, 0.9):
        fresh = compiler.resimulate_with_split(result, fraction)
        decoded = compiler.resimulate_with_split(roundtripped, fraction)
        assert json.dumps(decoded.summary_dict(), sort_keys=True) == json.dumps(
            fresh.summary_dict(), sort_keys=True
        )


def test_decoded_partitioning_replays_identically(compiled, roundtripped):
    _, result = compiled
    sim = TimingSimulator()
    trace = result.execution.trace
    fresh = sim.simulate(
        trace, ThreadAssignment.from_partitioning(result.module, result.dswp.partitioning)
    )
    decoded = sim.simulate(
        roundtripped.execution.trace,
        ThreadAssignment.from_partitioning(
            roundtripped.module, roundtripped.dswp.partitioning
        ),
    )
    assert dataclasses.asdict(decoded) == dataclasses.asdict(fresh)


def test_refuses_materialised_thread_extractions(compiled):
    _, result = compiled
    with_extractions = dataclasses.replace(
        result,
        dswp=dataclasses.replace(
            result.dswp,
            partitioning=dataclasses.replace(
                result.dswp.partitioning, extractions={"stage_0": object()}
            ),
        ),
    )
    with pytest.raises(ArtifactCodecError, match="extraction"):
        encode_compilation_result(with_extractions)
    assert issubclass(ArtifactCodecError, ReproError)


def test_cache_stores_artifact_entries(compiled, tmp_path):
    _, result = compiled
    cache = ArtifactCache(tmp_path)
    path = cache.put("a" * 64, result, serializer="artifact")
    assert path is not None and path.suffix == ".art"
    loaded = cache.get("a" * 64)
    assert loaded is not None
    assert json.dumps(loaded.summary_dict(), sort_keys=True) == json.dumps(
        result.summary_dict(), sort_keys=True
    )
    assert print_module(loaded.module) == print_module(result.module)
