"""Tests of the rendering subsystem (``repro.viz``) and its task-graph wiring.

Three layers, cheapest first:

* pure unit tests of the SVG primitives, scales and chart forms on synthetic
  data — including a golden-file comparison pinning the engine's exact
  output bytes;
* figure-spec and HTML-assembly tests on synthetic result dicts (no
  compiles), asserting the report is self-contained;
* end-to-end determinism over the cheapest workload: byte-identical SVG and
  ``report.html`` across two warm runs and across serial vs ``--parallel``
  renders, with render tasks hitting the artifact cache (0 re-renders on a
  warm run).
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.errors import ReproError
from repro.eval import experiments
from repro.eval.harness import EvaluationHarness
from repro.viz import theme
from repro.viz.charts import ScatterPoint, Series, Span, grouped_bars, line_chart, scatter_chart, stacked_bars, timeline_chart
from repro.viz.figures import FIGURE_SPECS, render_figure
from repro.viz.report_html import build_report_html, html_table
from repro.viz.scales import BandScale, LinearScale, PointScale, nice_ticks
from repro.viz.svg import Element, fmt_num, render, text_width

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


# ---------------------------------------------------------------------------
# SVG primitives and scales
# ---------------------------------------------------------------------------


def test_fmt_num_is_compact_and_deterministic():
    assert fmt_num(3) == "3"
    assert fmt_num(3.0) == "3"
    assert fmt_num(3.10) == "3.1"
    assert fmt_num(3.14159) == "3.14"
    assert fmt_num(-0.004) == "0"  # rounded -0 normalises
    assert fmt_num(True) == "1"


def test_element_rendering_escapes_and_orders_attributes():
    root = Element("g", {"class": "a", "x": 1.5})
    root.elem("text", {"x": 2}, text='<&> "quoted"')
    markup = render(root)
    assert '<g class="a" x="1.5">' in markup
    assert "&lt;&amp;&gt;" in markup
    assert render(root) == markup  # stable


def test_nice_ticks_bracket_the_domain():
    ticks = nice_ticks(0.0, 23.0)
    assert ticks[0] <= 0.0 and ticks[-1] >= 23.0
    assert ticks == sorted(ticks)
    # 1-2-5 stepped: the step is one of the nice multiples.
    step = round(ticks[1] - ticks[0], 9)
    assert step in (1.0, 2.0, 2.5, 5.0, 10.0)
    assert nice_ticks(0.0, 1.05)[0] == 0.0


def test_scales_map_endpoints():
    linear = LinearScale((0.0, 10.0), (100.0, 0.0))
    assert linear(0.0) == 100.0 and linear(10.0) == 0.0
    bands = BandScale(("a", "b"), (0.0, 100.0))
    assert 0.0 < bands.position(0) < bands.position(1) < 100.0
    assert bands.bandwidth > 0
    points = PointScale(("a", "b", "c"), (0.0, 90.0))
    assert points(0) < points(1) < points(2)


# ---------------------------------------------------------------------------
# chart forms (synthetic data)
# ---------------------------------------------------------------------------


def test_grouped_bars_matches_golden_file():
    markup = grouped_bars(
        ["alpha", "beta", "gamma"],
        [Series("measured", (1.0, 2.5, 0.75), 0), Series("paper", (1.2, 2.0, 1.0), 1)],
        title="Golden grouped bars",
        y_label="value",
        baseline=(1.0, "baseline"),
    )
    golden = (GOLDEN_DIR / "grouped_bars.svg").read_text(encoding="utf-8")
    assert markup == golden  # byte-identical run-to-run, release-to-release


def test_grouped_bars_carries_legend_tooltips_and_baseline():
    markup = grouped_bars(
        ["a"],
        [Series("x", (2.0,), 0), Series("y", (1.0,), 1)],
        title="t",
        y_label="v",
        baseline=(1.0, "ref"),
    )
    assert markup.count("<title>") == 2  # one native tooltip per bar
    assert "x" in markup and "y" in markup  # legend (>= 2 series)
    assert 'class="vz-ref"' in markup  # reference rule
    assert "vz-s0" in markup and "vz-s1" in markup


def test_stacked_bars_reference_legend_and_gaps():
    markup = stacked_bars(
        ["a", "b"],
        [Series("lower", (10.0, 20.0), 0), Series("upper", (5.0, 8.0), 2)],
        title="t",
        y_label="LUTs",
        reference=((18.0, 30.0), "total"),
    )
    assert "vz-s-1" not in markup  # placeholder swatch was rewritten
    assert markup.count('class="vz-ref"') >= 3  # legend key + one dash per bar
    assert "total" in markup


def test_line_chart_direct_labels_only_up_to_four_series():
    few = line_chart(
        ["2", "8"],
        [Series("one", (1.0, 0.9), 0), Series("two", (1.0, 0.8), 1)],
        title="t", y_label="y", x_axis_label="x",
    )
    assert 'class="vz-dlab"' in few  # end labels supplement the legend
    many = line_chart(
        ["2", "8"],
        [Series(f"s{i}", (1.0, 0.9), i) for i in range(8)],
        title="t", y_label="y", x_axis_label="x",
    )
    assert 'class="vz-dlab"' not in many  # legend alone carries identity
    assert many.count("<polyline") == 8


def test_scatter_chart_links_and_labels():
    markup = scatter_chart(
        [ScatterPoint(10.0, 1.0, 1, tooltip="a"), ScatterPoint(5.0, 2.0, 0, label="bench")],
        legend=[("twill", 0), ("legup", 1)],
        links=[(0, 1)],
        title="t", y_label="speed", x_axis_label="area",
    )
    assert 'class="vz-link"' in markup
    assert "bench" in markup and markup.count("<circle") == 2


def test_timeline_chart_lanes_and_kinds():
    markup = timeline_chart(
        [
            Span("compile:a", "compile", "pid:1", 0.0, 2.0),
            Span("sweep:x", "runtime", "pid:2", 1.0, 1.5),
            Span("render:6.1", "render", "pid:1", 2.0, 2.2),
        ]
    )
    assert "pid:1" in markup and "pid:2" in markup
    assert "compile" in markup and "render" in markup  # kind legend
    assert timeline_chart([]) == ""


# ---------------------------------------------------------------------------
# figure specs and HTML assembly (synthetic result dicts)
# ---------------------------------------------------------------------------


def _figure_6_1_data():
    return {
        "rows": [
            {"benchmark": "blowfish", "pure_sw": 1.0, "pure_hw": 0.6, "twill": 0.8},
            {"benchmark": "mips", "pure_sw": 1.0, "pure_hw": 0.5, "twill": 0.7},
        ]
    }


def test_render_figure_from_result_dict():
    markup = render_figure("6.1", _figure_6_1_data())
    assert markup.startswith("<svg")
    assert "blowfish" in markup and "mips" in markup
    assert render_figure("6.1", _figure_6_1_data()) == markup


def test_render_figure_unknown_id_fails_cleanly():
    with pytest.raises(ReproError, match="unknown figure"):
        render_figure("9.9", {"rows": []})


def test_figure_specs_cover_the_render_registry():
    assert set(FIGURE_SPECS) == set(experiments.RENDER_FIGURE_IDS)
    assert set(experiments.FIGURE_DATA_AGGREGATORS) == set(experiments.RENDER_FIGURE_IDS)


def test_html_table_formats_and_aligns():
    markup = html_table([{"benchmark": "mips", "luts": 12345, "speedup": 3.14159, "note": "x"}])
    assert "<th>benchmark</th>" in markup
    assert '<td class="num">12,345</td>' in markup
    assert '<td class="num">3.14</td>' in markup
    assert "<td>x</td>" in markup


def test_report_html_is_self_contained():
    artefacts = {
        "summary": {
            "mean_speedup_vs_sw": 20.0, "paper_speedup_vs_sw": 22.2,
            "mean_speedup_vs_hw": 1.5, "paper_speedup_vs_hw": 1.63,
            "table": "Results overview (§6.7): measured vs paper",
        },
        "table_6.1": {"rows": [{"benchmark": "mips", "queues": 3}], "table": "Table 6.1 — x"},
    }
    figures = {"6.1": render_figure("6.1", _figure_6_1_data())}
    metadata = {
        "config_hash": "f" * 64,
        "benchmarks": ["blowfish", "mips"],
        "cache": ".repro_cache",
        "scheduler": {"total": 9, "cache_hits": 8, "seeded": 0,
                      "executed": {"aggregate": 1}, "cache_hit_kinds": {"render": 1}},
    }
    document = build_report_html(artefacts, figures, metadata)
    assert 'id="figure-6.1"' in document and 'id="table_6.1"' in document
    assert "0 rendered, 1 from cache" in document
    # Self-contained: no executable scripts, no external stylesheets, no
    # fetched assets.  The only <script allowed is the inert data island.
    assert "<script" not in document.replace('<script type="application/json"', "")
    assert "<link" not in document
    assert "src=" not in document
    assert "@import" not in document
    # The raw artefact numbers ride along as machine-readable JSON.
    assert 'id="report-data"' in document
    island = document.split('id="report-data">', 1)[1].split("</script>", 1)[0]
    payload = json.loads(island.replace("<\\/", "</"))
    assert payload["artefacts"]["table_6.1"]["rows"][0]["benchmark"] == "mips"
    # Deterministic: same inputs, same bytes.
    assert build_report_html(artefacts, figures, metadata) == document


def test_report_html_embeds_timeline_only_when_traced():
    figures = {"6.1": render_figure("6.1", _figure_6_1_data())}
    spans = [Span("compile:a", "compile", "pid:9", 0.0, 1.0)]
    with_trace = build_report_html({}, figures, {}, trace_spans=spans)
    without = build_report_html({}, figures, {})
    assert 'id="timeline"' in with_trace and "pid:9" in with_trace
    assert 'id="timeline"' not in without


def test_series_palette_has_eight_validated_slots():
    # Slot order is the CVD-safety mechanism; both modes cover 8 benchmarks.
    assert len(theme.SERIES_LIGHT) == len(theme.SERIES_DARK) == 8
    assert len(set(theme.SERIES_LIGHT)) == 8


# ---------------------------------------------------------------------------
# end-to-end determinism and caching (cheapest workload)
# ---------------------------------------------------------------------------


def test_figure_svg_renders_through_the_cache(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = EvaluationHarness(benchmarks=["blowfish"], cache_dir=cache_dir)
    markup = experiments.figure_svg("6.4", cold)
    assert markup.startswith("<svg") and "blowfish" in markup
    assert cold.last_stats["executed"].get("render") == 1
    # Fresh harness, same cache: byte-identical and zero re-renders.
    warm = EvaluationHarness(benchmarks=["blowfish"], cache_dir=cache_dir)
    assert experiments.figure_svg("6.4", warm) == markup
    assert warm.last_stats["executed"].get("render", 0) == 0
    assert warm.last_stats["cache_hit_kinds"].get("render") == 1


def test_report_figures_serial_vs_parallel_byte_identical(tmp_path):
    serial = EvaluationHarness(benchmarks=["blowfish"], cache_dir=str(tmp_path / "c1"))
    artefacts_serial, figures_serial = experiments.run_report_figures(serial)
    parallel = EvaluationHarness(benchmarks=["blowfish"], cache_dir=str(tmp_path / "c2"))
    artefacts_parallel, figures_parallel = experiments.run_report_figures(parallel, parallel=2)
    assert figures_serial == figures_parallel
    assert artefacts_serial == artefacts_parallel
    assert serial.last_stats == parallel.last_stats  # scheduling-invariant
    # The mips split figure is excluded by the benchmark restriction.
    assert "6.3" not in figures_serial
    assert set(figures_serial) == {
        "6.1", "6.2", "6.4", "6.5", "6.6", "area", "pareto", "explore", "explore-progress",
    }


def test_no_cache_runs_still_render(tmp_path):
    harness = EvaluationHarness(benchmarks=["blowfish"], use_cache=False)
    markup = experiments.figure_svg("6.4", harness)
    assert markup.startswith("<svg") and "blowfish" in markup


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


def run_cli(argv, tmp_path, capsys):
    code = main(list(argv) + ["--cache-dir", str(tmp_path / "cache")])
    out, err = capsys.readouterr()
    return code, out, err


def test_cli_figure_svg_writes_standalone_file(tmp_path, capsys):
    target = tmp_path / "figure_6_4.svg"
    code, out, err = run_cli(["figure", "6.4", "--svg", str(target)], tmp_path, capsys)
    assert code == 0
    assert str(target) in err and out == ""
    markup = target.read_text(encoding="utf-8")
    assert markup.startswith("<svg") and "blowfish" in markup
    # '-' streams the markup to stdout instead.
    code, out, _ = run_cli(["figure", "6.4", "--svg", "-"], tmp_path, capsys)
    assert code == 0 and out == markup


def test_cli_report_html_end_to_end(tmp_path, capsys):
    args = ["report", "--benchmarks", "blowfish", "--html", str(tmp_path / "out")]
    code, out, err = run_cli(args, tmp_path, capsys)
    assert code == 0
    assert "report.html" in err and out == ""  # tables stay off stdout
    report = (tmp_path / "out" / "report.html").read_text(encoding="utf-8")
    for figure_id in ("6.1", "6.2", "6.4", "6.5", "6.6", "area", "pareto"):
        assert f'id="figure-{figure_id}"' in report
    assert 'id="figure-6.3"' not in report  # mips not in the benchmark set
    assert 'id="table_6.1"' in report and 'id="table_6.2"' in report
    assert "<script" not in report.replace('<script type="application/json"', "")
    assert "<link" not in report and "src=" not in report
    # The per-benchmark drill-down page sits beside the report, is linked
    # from it, and embeds its own raw-JSON island.
    assert 'href="benchmark-blowfish.html"' in report
    page = (tmp_path / "out" / "benchmark-blowfish.html").read_text(encoding="utf-8")
    assert 'id="benchmark-data"' in page and 'id="table_6.1"' in page
    assert "<script" not in page.replace('<script type="application/json"', "")
    # Two warm repeats into separate directories: byte-identical documents.
    # (The cold document legitimately differs in its cache-hit metadata.)
    for directory in ("out2", "out3"):
        code, _, _ = run_cli(
            ["report", "--benchmarks", "blowfish", "--html", str(tmp_path / directory)],
            tmp_path, capsys,
        )
        assert code == 0
    warm_one = (tmp_path / "out2" / "report.html").read_text(encoding="utf-8")
    warm_two = (tmp_path / "out3" / "report.html").read_text(encoding="utf-8")
    assert warm_one == warm_two
    assert "0 rendered" in warm_one  # the warm runs re-rendered nothing
    # The figures themselves are identical cold vs warm (only metadata moves).
    assert warm_one.count("<svg") == report.count("<svg")


def test_cli_report_html_with_trace_embeds_timeline(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code, _, _ = run_cli(
        ["report", "--benchmarks", "blowfish", "--html", str(tmp_path / "out"),
         "--trace", str(trace_path)],
        tmp_path, capsys,
    )
    assert code == 0
    report = (tmp_path / "out" / "report.html").read_text(encoding="utf-8")
    assert 'id="timeline"' in report
    assert json.loads(trace_path.read_text())["traceEvents"]  # trace file still written


def test_report_html_rejects_stdout_format_flags(tmp_path, capsys):
    code, _, err = run_cli(
        ["report", "--html", str(tmp_path / "out"), "--json"], tmp_path, capsys
    )
    assert code == 2 and "--html" in err and "Traceback" not in err


def test_worker_pool_surfaces_signal_deaths():
    """A pool member killed by a signal (exitcode -N) must not read as 0."""
    from unittest import mock

    from repro.eval.remote import worker as worker_mod

    killed = mock.Mock(exitcode=-9)
    clean = mock.Mock(exitcode=0)
    with mock.patch.object(worker_mod.multiprocessing, "Process") as process_cls:
        process_cls.side_effect = [killed, clean]
        code = worker_mod.run_worker_pool(2, coordinator_url="http://h:1")
    assert code == 128 + 9


def test_figure_order_is_the_spec_registry():
    from repro.viz.report_html import FIGURE_ORDER

    assert FIGURE_ORDER == tuple(FIGURE_SPECS)
    assert FIGURE_ORDER == experiments.RENDER_FIGURE_IDS


def test_parser_wires_new_flags():
    parser = build_parser()
    args = parser.parse_args(["figure", "6.2", "--svg", "out.svg"])
    assert args.svg == "out.svg"
    args = parser.parse_args(["report", "--html", "out"])
    assert args.html == "out"
    args = parser.parse_args(["worker", "serve", "--coordinator", "http://h:1", "--pool", "3"])
    assert args.pool == 3
