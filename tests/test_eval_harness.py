"""Tests of the evaluation harness on a reduced benchmark set (kept small so the
unit-test suite stays fast; the full set runs in benchmarks/)."""

import pytest

from repro.eval import EvaluationHarness
from repro.eval.experiments import figure_6_5, figure_6_6, table_6_1, table_6_2
from repro.core.report import format_result_table, geometric_mean


@pytest.fixture(scope="module")
def harness():
    return EvaluationHarness(benchmarks=["mips", "gsm"])


def test_table_6_1_structure(harness):
    data = table_6_1(harness)
    assert len(data["rows"]) == 2
    for row in data["rows"]:
        assert row["queues"] >= 1
        assert row["hw_threads"] >= 1
        assert row["semaphores"] >= 0
    assert "Table 6.1" in data["table"]


def test_table_6_2_structure(harness):
    data = table_6_2(harness)
    for row in data["rows"]:
        assert row["legup_luts"] > 0
        assert row["twill_hwthreads_luts"] > 0
        assert row["twill_plus_microblaze_luts"] > row["twill_luts"]


def test_figure_6_5_normalisation(harness):
    data = figure_6_5(harness)
    for row in data["rows"]:
        assert row["latency_2"] == pytest.approx(1.0)
        # Larger latency never speeds the system up.
        assert row["latency_128"] <= row["latency_2"] + 1e-9


def test_figure_6_6_normalisation(harness):
    data = figure_6_6(harness)
    for row in data["rows"]:
        assert row["depth_8"] == pytest.approx(1.0)
        assert row["depth_2"] <= row["depth_32"] + 1e-9


def test_functional_outputs_always_checked(harness):
    run = harness.run("mips")
    assert run.functional_outputs_match()


def test_report_table_formatting():
    table = format_result_table(["name", "value"], [["a", 1.5], ["bb", 2]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2]
    assert any("1.50" in line for line in lines)


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
