"""Tests of the task-graph execution engine and its cache integration.

Graph-shape tests use cheap dummy nodes; end-to-end tests use the two
cheapest workloads (blowfish, mips) against pytest-managed temp cache
directories, mirroring ``tests/test_eval_cache.py``.
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.config import CompilerConfig, RuntimeConfig
from repro.errors import TaskGraphCycleError, TaskGraphError
from repro.eval.cache import ArtifactCache
from repro.eval.experiments import run_report
from repro.eval.harness import EvaluationHarness
from repro.eval.taskgraph import Task, TaskGraph, TaskScheduler, aggregate_task

FAST = ["blowfish", "mips"]


def make_harness(tmp_path, **kwargs):
    return EvaluationHarness(benchmarks=FAST, cache_dir=str(tmp_path / "cache"), **kwargs)


def node(task_id, deps=(), value=None):
    """A parent-side dummy node returning *value* (or a dep-derived tuple)."""

    def fn(results, *args):
        if value is not None:
            return value
        return tuple(results[d] for d in deps)

    return Task(task_id=task_id, kind="aggregate", fn=fn, deps=tuple(deps))


# ---------------------------------------------------------------------------
# graph structure
# ---------------------------------------------------------------------------


def test_topological_order_respects_dependencies():
    graph = TaskGraph()
    graph.add(node("d", deps=("b", "c")))
    graph.add(node("b", deps=("a",)))
    graph.add(node("c", deps=("a",)))
    graph.add(node("a", value=1))
    order = [t.task_id for t in graph.topological_order()]
    assert set(order) == {"a", "b", "c", "d"}
    for task in graph:
        for dep in task.deps:
            assert order.index(dep) < order.index(task.task_id)
    # Stable: among ready tasks, declaration order wins.
    assert order.index("b") < order.index("c")


def test_cycle_detection_raises():
    graph = TaskGraph()
    graph.add(node("a", deps=("b",)))
    graph.add(node("b", deps=("a",)))
    with pytest.raises(TaskGraphCycleError, match="a, b"):
        graph.topological_order()


def test_unknown_dependency_rejected():
    graph = TaskGraph()
    graph.add(node("a", deps=("ghost",)))
    with pytest.raises(TaskGraphError, match="unknown task 'ghost'"):
        graph.topological_order()


def test_duplicate_add_is_a_noop_but_conflicts_raise():
    graph = TaskGraph()
    first = node("a", value=1)
    graph.add(first)
    graph.add(first)  # identical re-declaration: reused
    assert len(graph) == 1
    with pytest.raises(TaskGraphError, match="different content key"):
        graph.add(Task(task_id="a", kind="aggregate", fn=first.fn, key="deadbeef"))
    # Key-less nodes have no content address, so a different computation
    # under the same id must be rejected rather than silently dropped.
    with pytest.raises(TaskGraphError, match="different computation"):
        graph.add(node("a", value=2))


def test_scheduler_threads_results_through_aggregates():
    graph = TaskGraph()
    graph.add(node("one", value=1))
    graph.add(node("two", value=2))
    graph.add(node("both", deps=("one", "two")))
    results = TaskScheduler(graph).run()
    assert results["both"] == (1, 2)


def test_scheduler_seeds_short_circuit_execution():
    graph = TaskGraph()
    graph.add(node("one", value=1))
    graph.add(node("double", deps=("one",)))
    results = TaskScheduler(graph, seeds={"one": 41}).run()
    assert results["double"] == (41,)


# ---------------------------------------------------------------------------
# serial vs parallel report equivalence
# ---------------------------------------------------------------------------


def test_parallel_report_is_byte_identical_to_serial(tmp_path):
    serial = run_report(harness=make_harness(tmp_path / "s"))
    parallel = run_report(harness=make_harness(tmp_path / "p"), parallel=2)
    assert json.dumps(serial, sort_keys=True, default=repr) == json.dumps(
        parallel, sort_keys=True, default=repr
    )
    # Sweep points really were scheduled as independent jobs: the parallel
    # cache holds one derived entry per (workload, sweep-point).
    stats = make_harness(tmp_path / "p").cache.stats()
    assert stats["entries"] > len(FAST) * 8


def test_report_warm_run_matches_cold_run(tmp_path):
    cold = run_report(harness=make_harness(tmp_path))
    warm = run_report(harness=make_harness(tmp_path), parallel=2)
    assert json.dumps(cold, sort_keys=True, default=repr) == json.dumps(
        warm, sort_keys=True, default=repr
    )


def test_sweeps_from_unpickled_artifact_match_fresh(tmp_path):
    """Re-simulating a disk-loaded compile artifact must equal the fresh run.

    Guards the pickle round trip of the id()-keyed structures (Profile,
    Trace, FunctionPartitioning.assignment): before their __getstate__ hooks
    existed, a re-partition of an unpickled module silently degenerated to
    the pure-software configuration.
    """
    h1 = make_harness(tmp_path)
    fresh_split = h1.twill_cycles_with_split("blowfish", 0.4)
    fresh_cycles = h1.twill_cycles_with_runtime("blowfish", RuntimeConfig(queue_latency=32))
    assert fresh_split["queues"] > 0  # the fresh hybrid really is hybrid
    # Drop only the derived JSON entries; the compile pickle stays, so a new
    # harness must recompute both sweep points from the unpickled artifact.
    for derived in h1.cache.objects_dir.rglob("*.json"):
        derived.unlink()
    h2 = make_harness(tmp_path)
    assert h2.twill_cycles_with_split("blowfish", 0.4) == fresh_split
    assert h2.twill_cycles_with_runtime("blowfish", RuntimeConfig(queue_latency=32)) == fresh_cycles


# ---------------------------------------------------------------------------
# single-flight locking
# ---------------------------------------------------------------------------


def _contender(cache_dir, key, sentinel_dir):
    cache = ArtifactCache(Path(cache_dir))

    def compute():
        (Path(sentinel_dir) / f"compute-{os.getpid()}").write_text("ran")
        time.sleep(0.3)  # widen the window a second computer would race into
        return {"value": 42}

    value = cache.get_or_compute(key, compute, serializer="json")
    assert value == {"value": 42}


def test_single_flight_two_processes_one_compute(tmp_path):
    sentinel_dir = tmp_path / "sentinels"
    sentinel_dir.mkdir()
    key = "5" * 64
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_contender, args=(str(tmp_path / "cache"), key, str(sentinel_dir)))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=30)
        assert p.exitcode == 0
    # Exactly one process computed; the other waited on the lock and reused.
    assert len(list(sentinel_dir.iterdir())) == 1
    assert ArtifactCache(tmp_path / "cache").get(key) == {"value": 42}


# ---------------------------------------------------------------------------
# LRU pruning
# ---------------------------------------------------------------------------


def test_prune_evicts_least_recently_used_first(tmp_path):
    cache = ArtifactCache(tmp_path / "c")
    now = time.time()
    for index, key in enumerate(["a" * 64, "b" * 64, "c" * 64]):
        path = cache.put(key, {"payload": key}, serializer="json")
        os.utime(path, (now - 100 + index, now - 100 + index))  # a oldest
    entry_size = cache._path("a" * 64, "json").stat().st_size
    summary = cache.prune(max_bytes=2 * entry_size)
    assert summary["removed_entries"] == 1
    assert cache.get("a" * 64) is None  # oldest went first
    assert cache.get("b" * 64) is not None
    assert cache.get("c" * 64) is not None
    assert summary["remaining_bytes"] <= 2 * entry_size


def test_get_refreshes_recency(tmp_path):
    cache = ArtifactCache(tmp_path / "c")
    now = time.time()
    for index, key in enumerate(["a" * 64, "b" * 64]):
        path = cache.put(key, index, serializer="json")
        os.utime(path, (now - 100 + index, now - 100 + index))
    cache.get("a" * 64)  # touch the older entry: it becomes most recent
    entry_size = cache._path("a" * 64, "json").stat().st_size
    cache.prune(max_bytes=entry_size)
    assert cache.get("a" * 64) is not None
    assert cache.get("b" * 64) is None


def test_prune_to_zero_and_stats_across_formats(tmp_path):
    cache = ArtifactCache(tmp_path / "c")
    cache.get_or_compute("1" * 64, lambda: {"derived": True}, serializer="json")
    cache.put("2" * 64, object, serializer="pickle")
    assert cache.stats()["entries"] == 2
    assert (cache.locks_dir / "11" / ("1" * 64 + ".lock")).exists()
    summary = cache.prune(max_bytes=0)
    assert summary["removed_entries"] == 2
    assert cache.stats()["entries"] == 0
    # Evicting an entry sweeps its lock file too.
    assert not (cache.locks_dir / "11" / ("1" * 64 + ".lock")).exists()


def test_auto_prune_threshold_in_runtime_config(tmp_path):
    config = CompilerConfig()
    config.runtime.cache_max_bytes = 1  # smaller than any artifact
    harness = EvaluationHarness(
        config=config, benchmarks=["blowfish"], cache_dir=str(tmp_path / "cache")
    )
    harness.run_all()
    assert harness.cache.stats()["entries"] == 0  # pruned right after the run
    # Policy knobs must not leak into content hashes or sweep keys.
    assert config.content_hash() == CompilerConfig().content_hash()
    assert RuntimeConfig(cache_max_bytes=123).to_dict() == RuntimeConfig().to_dict()


# ---------------------------------------------------------------------------
# derived artifacts are structured JSON
# ---------------------------------------------------------------------------


def test_derived_artifacts_stored_as_json(tmp_path):
    harness = make_harness(tmp_path)
    harness.twill_cycles_with_runtime("blowfish", RuntimeConfig(queue_latency=8))
    harness.twill_cycles_with_split("blowfish", 0.4)
    objects = harness.cache.objects_dir
    assert len(list(objects.rglob("*.json"))) == 2  # both sweep artifacts
    assert len(list(objects.rglob("*.pkl"))) == 1   # only the compile artifact
    # The JSON is plain data, loadable without unpickling anything.
    payloads = [json.loads(p.read_text()) for p in objects.rglob("*.json")]
    assert any(isinstance(p, dict) and "cycles" in p for p in payloads)
