"""Tests of the telemetry subsystem (:mod:`repro.obs`).

Four layers, cheapest first:

* unit tests of the metrics registry (Prometheus exposition format,
  cumulative histogram semantics, idempotent declaration) and of the span
  tracer (context nesting, wire propagation, JSONL sink, off-by-default);
* scheduler integration: a traced serial run covers every task-graph node
  (executed, cache-hit and seeded alike) with valid parent links, and a
  traced run returns exactly what an untraced run returns;
* live-socket checks: a real worker + RemoteExecutor round trip yields one
  coherent trace across the coordinator hop, and both services answer
  ``/healthz`` (enriched) and ``/metrics`` (auth-exempt) correctly;
* CLI: ``repro trace`` renders tree and Gantt views, ``repro cluster
  status`` summarises live services, and a traced ``repro ingest`` is
  byte-identical to an untraced one (the full-report byte-identity runs in
  ``tools/obs_smoke.py`` / the ``obs-smoke`` CI job).
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.eval.cache import ArtifactCache
from repro.eval.remote import protocol
from repro.eval.remote.cache_http import make_cache_server
from repro.eval.remote.coordinator import Coordinator, start_coordinator_server
from repro.eval.remote.executor import RemoteExecutor
from repro.eval.remote.worker import run_worker
from repro.eval.taskgraph import Task, TaskGraph, TaskScheduler, aggregate_task
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.cluster import collect_status, metric_value, parse_prometheus, render_status
from repro.obs.logs import get_logger
from repro.obs.render import load_spans, render_gantt, render_tree


@pytest.fixture
def traced(tmp_path):
    """Switch tracing on for one test; restore the env-driven default after."""
    sink = tmp_path / "spans.jsonl"
    tracer = obs_tracing.enable(sink, service="test")
    yield tracer, sink
    obs_tracing.reset()
    obs_tracing.set_service("cli")


@pytest.fixture
def untraced():
    """Pin tracing off (reset any state a previous test left behind)."""
    obs_tracing.reset()
    yield
    obs_tracing.reset()
    obs_tracing.set_service("cli")


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


def test_registry_declaration_is_idempotent_and_type_checked():
    registry = obs_metrics.MetricsRegistry()
    counter = registry.counter("demo_total", "A demo counter.")
    assert registry.counter("demo_total", "ignored") is counter
    with pytest.raises(ValueError, match="already declared"):
        registry.gauge("demo_total", "wrong type")


def test_counter_is_monotonic_and_labelled():
    registry = obs_metrics.MetricsRegistry()
    counter = registry.counter("events_total", "Events.")
    counter.inc(outcome="ok")
    counter.inc(2.0, outcome="ok")
    counter.inc(outcome="error")
    assert counter.value(outcome="ok") == 3.0
    assert counter.value(outcome="error") == 1.0
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_render_produces_prometheus_exposition_format():
    registry = obs_metrics.MetricsRegistry()
    registry.counter("jobs_total", "Jobs.").inc(3, queue="high")
    registry.gauge("depth", "Depth.").set(7)
    text = registry.render()
    assert "# HELP jobs_total Jobs.\n# TYPE jobs_total counter" in text
    assert 'jobs_total{queue="high"} 3' in text
    assert "# TYPE depth gauge" in text
    assert "depth 7" in text


def test_label_values_are_escaped():
    registry = obs_metrics.MetricsRegistry()
    registry.counter("odd_total", "Odd.").inc(path='a"b\\c\nd')
    line = [l for l in registry.render().splitlines() if l.startswith("odd_total{")][0]
    assert '\\"' in line and "\\\\" in line and "\\n" in line
    # ...and the cluster parser reverses the escaping exactly.
    ((labels, value),) = parse_prometheus(line)["odd_total"]
    assert labels == {"path": 'a"b\\c\nd'} and value == 1.0


def test_histogram_buckets_are_cumulative():
    registry = obs_metrics.MetricsRegistry()
    histogram = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    samples = parse_prometheus(registry.render())
    buckets = {labels["le"]: v for labels, v in samples["lat_seconds_bucket"]}
    assert buckets == {"0.1": 1.0, "1": 3.0, "10": 4.0, "+Inf": 5.0}
    assert metric_value(samples, "lat_seconds_count") == 5.0
    assert metric_value(samples, "lat_seconds_sum") == pytest.approx(56.05)


def test_instruments_expose_zero_before_first_use():
    """A scrape right after startup must include every declared name, so
    dashboards can compute rates from process start."""
    registry = obs_metrics.MetricsRegistry()
    registry.counter("cold_total", "Cold.")
    registry.gauge("cold_depth", "Cold.")
    registry.histogram("cold_seconds", "Cold.", buckets=(1.0,))
    samples = parse_prometheus(registry.render())
    assert metric_value(samples, "cold_total") == 0.0
    assert metric_value(samples, "cold_depth") == 0.0
    assert metric_value(samples, "cold_seconds_count") == 0.0
    assert metric_value(samples, "cold_seconds_bucket", le="+Inf") == 0.0


def test_collectors_run_before_render_and_failures_are_contained():
    registry = obs_metrics.MetricsRegistry()
    gauge = registry.gauge("fresh", "Refreshed at scrape.")
    registry.register_collector(lambda: gauge.set(42))
    registry.register_collector(lambda: 1 / 0)  # must not break the scrape
    assert "fresh 42" in registry.render()


def test_stage_observer_folds_perf_stages_into_counters():
    from repro import perf

    obs_metrics.install_stage_observer()
    try:
        seconds = obs_metrics.counter("repro_stage_seconds_total", "")
        calls = obs_metrics.counter("repro_stage_calls_total", "")
        calls_before = calls.value(stage="ingest")
        with perf.stage("ingest"):
            pass
        assert calls.value(stage="ingest") == calls_before + 1
        assert seconds.value(stage="ingest") >= 0.0
    finally:
        perf.set_stage_observer(None)


def test_perf_stages_cover_ingest_and_explore():
    from repro import perf

    assert "ingest" in perf.STAGES and "explore" in perf.STAGES


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


def test_tracing_is_off_by_default(untraced, monkeypatch):
    monkeypatch.delenv(obs_tracing.TRACE_ENV, raising=False)
    obs_tracing.reset()
    assert not obs_tracing.enabled()
    with obs_tracing.span("noop") as span:
        assert span is obs_tracing.NULL_SPAN
    assert obs_tracing.wire_context() is None
    assert obs_tracing.trace_headers() == {}


def test_nested_spans_share_a_trace_and_link_parents(traced):
    tracer, _ = traced
    with obs_tracing.span("outer") as outer:
        with obs_tracing.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
    inner_rec, outer_rec = tracer.spans()  # inner finishes first
    assert outer_rec["name"] == "outer" and outer_rec["parent_id"] is None
    assert inner_rec["parent_id"] == outer_rec["span_id"]
    assert inner_rec["end"] >= inner_rec["start"]


def test_span_records_error_attribute_and_reraises(traced):
    tracer, _ = traced
    with pytest.raises(RuntimeError, match="boom"):
        with obs_tracing.span("failing"):
            raise RuntimeError("boom")
    [record] = tracer.spans()
    assert record["attrs"]["error"] == "RuntimeError: boom"


def test_activate_adopts_wire_context(traced):
    tracer, _ = traced
    with obs_tracing.activate("a" * 32, "b" * 16):
        with obs_tracing.span("adopted"):
            pass
        assert obs_tracing.current_trace_id() == "a" * 32
    [record] = tracer.spans()
    assert record["trace_id"] == "a" * 32 and record["parent_id"] == "b" * 16


def test_trace_headers_round_trip(traced):
    with obs_tracing.span("client") as span:
        headers = obs_tracing.trace_headers()
        assert headers[obs_tracing.TRACE_ID_HEADER] == span.trace_id
        assert headers[obs_tracing.PARENT_SPAN_HEADER] == span.span_id
        assert obs_tracing.context_from_headers(headers) == (span.trace_id, span.span_id)
    assert obs_tracing.context_from_headers({}) is None


def test_jsonl_sink_matches_the_buffer(traced):
    tracer, sink = traced
    with obs_tracing.span("a", kind="test", detail=1):
        pass
    lines = [json.loads(l) for l in sink.read_text().splitlines()]
    assert lines == tracer.spans()
    assert lines[0]["service"] == "test" and lines[0]["attrs"] == {"detail": 1}


def test_server_span_ignores_untraced_requests(traced):
    tracer, _ = traced
    with obs_tracing.server_span("cache.get", {}):  # no trace headers
        pass
    assert tracer.spans() == []
    with obs_tracing.server_span("cache.get", {obs_tracing.TRACE_ID_HEADER: "c" * 32}):
        pass
    [record] = tracer.spans()
    assert record["trace_id"] == "c" * 32


# ---------------------------------------------------------------------------
# scheduler integration (fake payloads, no compiles)
# ---------------------------------------------------------------------------


def _fake_fn(base):
    return {"value": base * 2}


def _make_graph():
    graph = TaskGraph()
    graph.add(Task(task_id="sweep:a", kind="runtime", fn=_fake_fn, args=(1,),
                   key="a" * 64, serializer="json"))
    graph.add(Task(task_id="sweep:b", kind="runtime", fn=_fake_fn, args=(2,),
                   key="b" * 64, serializer="json"))
    graph.add(aggregate_task(
        "agg", lambda results: results["sweep:a"]["value"] + results["sweep:b"]["value"],
        ["sweep:a", "sweep:b"],
    ))
    return graph


def test_traced_serial_run_covers_every_node_and_changes_nothing(traced, tmp_path):
    tracer, _ = traced
    cache = ArtifactCache(tmp_path / "cache")
    results = TaskScheduler(_make_graph(), cache=cache).run()
    assert results["agg"] == 6  # identical to what an untraced run computes
    spans = tracer.spans()
    named = {record["name"] for record in spans}
    assert {"scheduler.run", "task:sweep:a", "task:sweep:b", "task:agg"} <= named
    trace_ids = {record["trace_id"] for record in spans}
    assert len(trace_ids) == 1
    by_id = {record["span_id"]: record for record in spans}
    for record in spans:
        if record["parent_id"] is not None:
            assert record["parent_id"] in by_id, record["name"]

    # Warm re-run: the keyed nodes are cache hits and still get (marker) spans.
    warm = TaskScheduler(_make_graph(), cache=cache).run()
    assert warm["agg"] == 6
    hits = [
        record for record in tracer.spans()
        if record["attrs"].get("cache_hit") and record["name"].startswith("task:sweep:")
    ]
    assert {record["name"] for record in hits} == {"task:sweep:a", "task:sweep:b"}


def test_untraced_run_equals_traced_run(tmp_path):
    obs_tracing.reset()
    try:
        cold = TaskScheduler(_make_graph(), cache=ArtifactCache(tmp_path / "c1")).run()
        obs_tracing.enable(tmp_path / "spans.jsonl")
        hot = TaskScheduler(_make_graph(), cache=ArtifactCache(tmp_path / "c2")).run()
        assert cold == hot
    finally:
        obs_tracing.reset()
        obs_tracing.set_service("cli")


# ---------------------------------------------------------------------------
# distributed: one coherent trace across the coordinator hop
# ---------------------------------------------------------------------------


def remote_payload(base):
    return {"value": base * 3}


protocol.register_payload_function("_obs_test_payload", remote_payload)


def test_remote_round_trip_yields_one_coherent_trace(traced, tmp_path):
    tracer, _ = traced
    graph = TaskGraph()
    graph.add(Task(task_id="sweep:remote", kind="runtime", fn=remote_payload,
                   args=(7,), key="d" * 64, serializer="json"))
    cache = ArtifactCache(tmp_path / "cache")
    executor = RemoteExecutor(port=0, lease_timeout=10.0, worker_timeout=60.0)
    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(coordinator_url=executor.url, cache_spec=str(tmp_path / "cache"),
                    poll_wait=0.5, verbose=False),
        daemon=True,
    )
    worker.start()
    try:
        results = TaskScheduler(graph, cache=cache, executor=executor).run()
        assert results["sweep:remote"] == {"value": 21}
        worker.join(timeout=15)
    finally:
        executor.stop_server()

    spans = tracer.spans()
    assert len({record["trace_id"] for record in spans}) == 1
    scheduler_span = next(r for r in spans if r["name"] == "scheduler.run")
    task_span = next(r for r in spans if r["name"] == "task:sweep:remote")
    # The worker-side span re-parented under the submitting scheduler's span.
    assert task_span["parent_id"] == scheduler_span["span_id"]
    assert task_span["worker"]  # attributed to a worker identity


def test_worker_heartbeat_carries_the_current_trace_id():
    coordinator = Coordinator(lease_timeout=5.0)
    worker = coordinator.register(name="w1")["worker_id"]
    coordinator.heartbeat(worker, tasks=[], trace_id="e" * 32)
    assert coordinator.status()["worker_detail"]["w1"]["trace_id"] == "e" * 32
    coordinator.heartbeat(worker, tasks=[])  # idle again: attribution clears
    assert coordinator.status()["worker_detail"]["w1"]["trace_id"] is None


# ---------------------------------------------------------------------------
# services: enriched /healthz, auth-exempt /metrics, cluster status
# ---------------------------------------------------------------------------


def _fetch(url):
    import urllib.request

    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.headers, response.read().decode("utf-8")


def test_services_expose_enriched_healthz_and_metrics(tmp_path):
    from repro import __version__

    cache_server = make_cache_server(tmp_path / "store", port=0, token="s3cret")
    threading.Thread(target=cache_server.serve_forever, daemon=True).start()
    coordinator_server = start_coordinator_server(Coordinator(), port=0, token="s3cret")
    try:
        for url, role in ((cache_server.url, "cache"), (coordinator_server.url, "coordinator")):
            # Both endpoints answer without the shared secret.
            _, health_body = _fetch(f"{url}/healthz")
            health = json.loads(health_body)
            assert health["ok"] is True
            assert health["role"] == role
            assert health["version"] == __version__
            assert health["uptime_seconds"] >= 0.0
            headers, metrics_body = _fetch(f"{url}/metrics")
            assert headers.get("Content-Type", "").startswith("text/plain")
            assert "# TYPE" in metrics_body
        samples = parse_prometheus(_fetch(f"{coordinator_server.url}/metrics")[1])
        assert metric_value(samples, "repro_workers_live") == 0.0
        samples = parse_prometheus(_fetch(f"{cache_server.url}/metrics")[1])
        assert metric_value(samples, "repro_cache_entries") == 0.0
    finally:
        coordinator_server.shutdown()
        cache_server.shutdown()


def test_services_expose_build_info_and_request_histograms(tmp_path):
    from repro import __version__

    cache_server = make_cache_server(tmp_path / "store", port=0)
    threading.Thread(target=cache_server.serve_forever, daemon=True).start()
    coordinator_server = start_coordinator_server(Coordinator(), port=0)
    try:
        for url, histogram in (
            (cache_server.url, "repro_cache_request_seconds"),
            (coordinator_server.url, "repro_coordinator_request_seconds"),
        ):
            _fetch(f"{url}/healthz")  # drive one GET through the timer
            # The handler observes the duration *after* writing the response,
            # so the sample can land a beat after the client returns: poll.
            deadline = time.time() + 5.0
            while True:
                body = _fetch(f"{url}/metrics")[1]
                samples = parse_prometheus(body)
                count = metric_value(samples, f"{histogram}_count", method="GET")
                if count is not None and count >= 1.0:
                    break
                assert time.time() < deadline, f"no GET sample in {histogram}"
                time.sleep(0.05)
            assert metric_value(samples, "repro_build_info", version=__version__) == 1.0
            build_line = next(
                line for line in body.splitlines()
                if line.startswith("repro_build_info{")
            )
            assert 'python="' in build_line and build_line.endswith(" 1")
            # Explicit buckets: the exposition must carry the fine-grained
            # low end (1ms) and the +Inf catch-all, cumulatively ordered.
            assert f'{histogram}_bucket{{method="GET",le="0.001"}}' in body
            assert f'{histogram}_bucket{{method="GET",le="+Inf"}}' in body
    finally:
        coordinator_server.shutdown()
        cache_server.shutdown()


def test_cluster_status_summarises_live_services(tmp_path, capsys):
    cache_server = make_cache_server(tmp_path / "store", port=0)
    threading.Thread(target=cache_server.serve_forever, daemon=True).start()
    coordinator = Coordinator()
    coordinator_server = start_coordinator_server(coordinator, port=0)
    coordinator.register(name="w1")
    try:
        summary = collect_status(coordinator_server.url, cache_url=cache_server.url)
        assert summary["coordinator"]["ok"] and summary["cache"]["ok"]
        assert summary["coordinator"]["workers"] == ["w1"]
        text = render_status(summary)
        assert "workers live: 1" in text and "cache http://" in text
        # The CLI front end renders the same summary.
        code = main([
            "cluster", "status",
            "--coordinator", coordinator_server.url, "--cache", cache_server.url,
        ])
        out, _ = capsys.readouterr()
        assert code == 0 and "coordinator http://" in out
        # --json is machine-readable with a stable key order: re-serialising
        # the parsed payload reproduces the output byte for byte.
        code = main([
            "cluster", "status", "--json",
            "--coordinator", coordinator_server.url, "--cache", cache_server.url,
        ])
        out, _ = capsys.readouterr()
        assert code == 0
        payload = json.loads(out)
        assert payload["coordinator"]["workers"] == ["w1"]
        assert out == json.dumps(payload, indent=2, sort_keys=True) + "\n"
    finally:
        coordinator_server.shutdown()
        cache_server.shutdown()


def test_cluster_status_unreachable_coordinator_is_a_clean_error(capsys):
    code = main(["cluster", "status", "--coordinator", "127.0.0.1:9"])
    _, err = capsys.readouterr()
    assert code == 2 and "unreachable" in err


# ---------------------------------------------------------------------------
# CLI: repro trace rendering + traced-vs-untraced byte identity
# ---------------------------------------------------------------------------


def _span(name, span_id, parent_id, start, end, worker=None, **attrs):
    return {
        "trace_id": "f" * 32, "span_id": span_id, "parent_id": parent_id,
        "name": name, "kind": "task", "service": "cli", "worker": worker,
        "start": start, "end": end, "attrs": attrs,
    }


def test_repro_trace_renders_tree_and_gantt(tmp_path, capsys):
    trace_file = tmp_path / "trace.jsonl"
    records = [
        _span("scheduler.run", "01", None, 0.0, 2.0),
        _span("task:sweep:x", "02", "01", 0.1, 1.0, worker="pid:1"),
        _span("task:sweep:y", "03", "01", 1.0, 1.9, worker="pid:2", cache_hit=True),
        "not json",  # tolerated: a torn line must not break rendering
    ]
    trace_file.write_text(
        "\n".join(r if isinstance(r, str) else json.dumps(r) for r in records) + "\n"
    )
    assert main(["trace", str(trace_file)]) == 0
    tree, _ = capsys.readouterr()
    assert "scheduler.run" in tree and "task:sweep:x" in tree and "[hit]" in tree
    assert main(["trace", str(trace_file), "--gantt"]) == 0
    gantt, _ = capsys.readouterr()
    assert "pid:1" in gantt and "█" in gantt

    spans = load_spans(trace_file)
    assert len(spans) == 3  # the torn line was dropped
    assert "task:sweep:y" in render_tree(spans)
    assert "pid:2" in render_gantt(spans)


def test_repro_trace_on_missing_or_empty_file_fails_cleanly(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
    (tmp_path / "empty.jsonl").write_text("")
    assert main(["trace", str(tmp_path / "empty.jsonl")]) == 2
    _, err = capsys.readouterr()
    assert "REPRO_TRACE" in err


def test_repro_trace_renders_orphans_and_multiple_traces(tmp_path, capsys):
    other = _span("scheduler.run", "0c", None, 0.0, 1.0)
    other["trace_id"] = "e" * 32
    records = [
        _span("scheduler.run", "0a", None, 0.0, 2.0),
        _span("task:sweep:x", "02", "0a", 0.1, 1.0, worker="pid:1"),
        # Parent "99" is not in the file (e.g. torn mid-write): the span must
        # surface as a root with the ~orphan marker, not vanish.
        _span("task:sweep:late", "0b", "99", 5.0, 6.0, worker="pid:9"),
        other,
    ]
    trace_file = tmp_path / "trace.jsonl"
    trace_file.write_text("\n".join(json.dumps(r) for r in records) + "\n")

    assert main(["trace", str(trace_file)]) == 0
    tree, _ = capsys.readouterr()
    assert "~orphan" in tree and "task:sweep:late" in tree
    # Two distinct trace ids → two trace blocks, each with its own header.
    assert f"trace {'f' * 32}" in tree and f"trace {'e' * 32}" in tree

    assert main(["trace", str(trace_file), "--gantt"]) == 0
    gantt, _ = capsys.readouterr()
    assert "pid:9" in gantt and "█" in gantt

    # Restricting to one trace id drops the other block entirely.
    assert main(["trace", str(trace_file), "--trace-id", "e" * 32]) == 0
    only, _ = capsys.readouterr()
    assert f"trace {'e' * 32}" in only and f"trace {'f' * 32}" not in only


def test_interrupted_run_still_leaves_a_valid_trace(tmp_path):
    """Ctrl-C mid-run must flush every line: open spans land as interrupted."""
    import subprocess
    import sys as _sys

    import repro

    sink = tmp_path / "interrupted.jsonl"
    script = tmp_path / "kb.py"
    script.write_text(
        "import threading, time\n"
        "from repro.obs import tracing\n"
        "held = threading.Event()\n"
        "def hold():\n"
        "    with tracing.span('background.hold', kind='test'):\n"
        "        held.set()\n"
        "        time.sleep(60)\n"
        "threading.Thread(target=hold, daemon=True).start()\n"
        "held.wait(10)\n"
        "with tracing.span('main.work', kind='test'):\n"
        "    raise KeyboardInterrupt\n"
    )
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env[obs_tracing.TRACE_ENV] = str(sink)
    subprocess.run(
        [_sys.executable, str(script)], env=env, capture_output=True, timeout=60
    )

    lines = sink.read_text().splitlines()
    spans = [json.loads(line) for line in lines]  # every line parses
    by_name = {span["name"]: span for span in spans}
    # The span that raised carries the error; the still-open daemon-thread
    # span was force-closed by the shutdown hook and marked interrupted.
    assert "KeyboardInterrupt" in by_name["main.work"]["attrs"]["error"]
    assert by_name["background.hold"]["attrs"]["interrupted"] is True
    assert by_name["background.hold"]["end"] >= by_name["background.hold"]["start"]


def test_traced_ingest_is_byte_identical_and_captures_spans(tmp_path, capsys, monkeypatch):
    program = tmp_path / "tiny.c"
    program.write_text(
        "int main(void) { int i; for (i = 0; i < 3; i++) print_int(i); return 0; }\n"
    )
    from repro.workloads.base import WorkloadRegistry

    def run_ingest(cache_dir):
        before = set(WorkloadRegistry.names())
        try:
            code = main(["ingest", str(program), "--json", "--cache-dir", str(cache_dir)])
        finally:
            for name in set(WorkloadRegistry.names()) - before:
                WorkloadRegistry.unregister(name)
        out, _ = capsys.readouterr()
        assert code == 0
        return out

    monkeypatch.delenv(obs_tracing.TRACE_ENV, raising=False)
    obs_tracing.reset()
    try:
        plain = run_ingest(tmp_path / "cache-a")
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(obs_tracing.TRACE_ENV, str(sink))
        obs_tracing.reset()  # re-read the env, as a fresh process would
        traced_out = run_ingest(tmp_path / "cache-b")
        assert traced_out == plain  # byte-identical stdout
        spans = load_spans(sink)
        assert any(record["name"].startswith("task:ingest:") for record in spans)
    finally:
        monkeypatch.delenv(obs_tracing.TRACE_ENV, raising=False)
        obs_tracing.reset()
        obs_tracing.set_service("cli")


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


def test_get_logger_is_idempotent_and_level_filtered(monkeypatch):
    import logging

    monkeypatch.setenv("REPRO_LOG_LEVEL", "WARNING")
    logger = get_logger("testsvc")
    assert logger is get_logger("testsvc")  # one handler, not one per call
    assert len(logger.handlers) == 1
    assert logger.level == logging.WARNING
    verbose = get_logger("testsvc", verbose=True)
    assert verbose.level == logging.DEBUG  # --verbose forces DEBUG


def test_env_level_defaults_to_info(monkeypatch):
    import logging

    from repro.obs.logs import env_level

    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
    assert env_level() == logging.INFO
    monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
    assert env_level() == logging.DEBUG
    monkeypatch.setenv("REPRO_LOG_LEVEL", "nonsense")
    assert env_level() == logging.INFO
