"""Tests of the on-disk artifact cache and the parallel evaluation path.

Uses the two cheapest workloads (blowfish, mips) so the suite stays fast;
every harness here points at a pytest-managed temp directory so test runs
never touch (or depend on) a developer's ``.repro_cache/``.
"""

import dataclasses

import pytest

from repro.config import CompilerConfig, RuntimeConfig
from repro.core.compiler import TwillCompiler
from repro.eval import cache as cache_module
from repro.eval.cache import ArtifactCache, compile_key, derived_key
from repro.eval.experiments import table_6_1, table_6_2
from repro.eval.harness import EvaluationHarness
from repro.sim.timing import TimingSimulator
from repro.workloads import get_workload

FAST = ["blowfish", "mips"]


def make_harness(tmp_path, **kwargs):
    return EvaluationHarness(benchmarks=FAST, cache_dir=str(tmp_path / "cache"), **kwargs)


# ---------------------------------------------------------------------------
# key scheme
# ---------------------------------------------------------------------------


def test_compile_key_depends_on_source_and_config():
    config = CompilerConfig()
    base = compile_key("int main(void) { return 0; }", config)
    assert base == compile_key("int main(void) { return 0; }", config)
    assert base != compile_key("int main(void) { return 1; }", config)
    changed = CompilerConfig(inline_threshold=config.inline_threshold + 1)
    assert base != compile_key("int main(void) { return 0; }", changed)
    # Nested sections participate in the hash too.
    nested = CompilerConfig()
    nested.runtime = dataclasses.replace(nested.runtime, queue_depth=16)
    assert base != compile_key("int main(void) { return 0; }", nested)


def test_derived_key_depends_on_kind_and_params():
    base = derived_key("abc", "runtime", {"queue_latency": 2})
    assert base == derived_key("abc", "runtime", {"queue_latency": 2})
    assert base != derived_key("abc", "runtime", {"queue_latency": 8})
    assert base != derived_key("abc", "split", {"queue_latency": 2})
    assert base != derived_key("def", "runtime", {"queue_latency": 2})


def test_config_content_hash_stability():
    assert CompilerConfig().content_hash() == CompilerConfig().content_hash()
    assert CompilerConfig().content_hash() != CompilerConfig(inline_threshold=1).content_hash()


def test_compile_key_depends_on_code_digest(monkeypatch):
    config = CompilerConfig()
    before = compile_key("int main(void) { return 0; }", config)
    # Simulate an edit to the compiler source: the memoised digest changes,
    # so every compile key must change with it.
    monkeypatch.setattr(cache_module, "_code_digest_cache", "0" * 64)
    assert compile_key("int main(void) { return 0; }", config) != before


# ---------------------------------------------------------------------------
# ArtifactCache store semantics
# ---------------------------------------------------------------------------


def test_cache_put_get_roundtrip(tmp_path):
    cache = ArtifactCache(tmp_path / "c")
    assert cache.get("0" * 64) is None
    cache.put("0" * 64, {"x": 1})
    assert cache.get("0" * 64) == {"x": 1}
    assert cache.contains("0" * 64)
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["total_bytes"] > 0


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path / "c")
    path = cache.put("1" * 64, {"x": 1})
    path.write_bytes(b"not a pickle")
    assert cache.get("1" * 64) is None
    assert not path.exists()  # corrupt entries are evicted


def test_cache_clear(tmp_path):
    cache = ArtifactCache(tmp_path / "c")
    cache.put("2" * 64, 1)
    cache.put("3" * 64, 2)
    assert cache.clear() == 2
    assert cache.stats()["entries"] == 0
    assert cache.clear() == 0  # idempotent on an empty cache


def test_cache_clear_sweeps_orphaned_tmp_files(tmp_path):
    cache = ArtifactCache(tmp_path / "c")
    path = cache.put("4" * 64, 1)
    orphan = path.parent / "tmpdead.tmp"  # writer killed mid-put
    orphan.write_bytes(b"partial")
    stats = cache.stats()
    assert stats["orphaned_tmp"] == 1
    assert stats["total_bytes"] > path.stat().st_size  # orphan bytes counted
    assert cache.clear() == 1  # one real entry...
    assert not orphan.exists()  # ...and the orphan is swept too


# ---------------------------------------------------------------------------
# harness x cache integration
# ---------------------------------------------------------------------------


def test_disk_cache_hit_skips_compilation(tmp_path, monkeypatch):
    h1 = make_harness(tmp_path)
    cold = h1.run("blowfish")
    assert h1.cache.stats()["entries"] == 1

    # A fresh harness with the same config must load from disk: compiling
    # again would call TwillCompiler.compile_and_simulate, which we break.
    h2 = make_harness(tmp_path)
    monkeypatch.setattr(
        TwillCompiler,
        "compile_and_simulate",
        lambda *a, **k: pytest.fail("cache miss: compile_and_simulate was called"),
    )
    warm = h2.run("blowfish")
    assert warm.result.outputs == cold.result.outputs
    assert warm.result.system.twill.cycles == cold.result.system.twill.cycles


def test_config_change_invalidates_cache(tmp_path):
    h1 = make_harness(tmp_path)
    h1.run("blowfish")
    changed = CompilerConfig(inline_threshold=10)
    h2 = make_harness(tmp_path, config=changed)
    h2.run("blowfish")
    # Different config hash => different key => a second entry, not a reuse.
    assert h2.cache.stats()["entries"] == 2
    assert h1._compile_key("blowfish") != h2._compile_key("blowfish")


def test_use_cache_false_writes_nothing(tmp_path):
    h = make_harness(tmp_path, use_cache=False)
    h.run("blowfish")
    assert h.cache is None
    assert not (tmp_path / "cache").exists()


def test_derived_sweep_results_are_cached(tmp_path, monkeypatch):
    h1 = make_harness(tmp_path)
    runtime = RuntimeConfig(queue_latency=8)
    cycles = h1.twill_cycles_with_runtime("blowfish", runtime)
    split = h1.twill_cycles_with_split("blowfish", 0.4)

    h2 = make_harness(tmp_path)
    h2.run("blowfish")  # warm the compile artefact from disk
    # Any re-simulation (runtime sweep or split re-partition) bottoms out in
    # TimingSimulator.simulate; a derived-cache hit must never reach it.
    monkeypatch.setattr(
        TimingSimulator,
        "simulate",
        lambda *a, **k: pytest.fail("derived cache miss: a timing re-simulation ran"),
    )
    assert h2.twill_cycles_with_runtime("blowfish", runtime) == cycles
    assert h2.twill_cycles_with_split("blowfish", 0.4) == split


# ---------------------------------------------------------------------------
# parallel execution
# ---------------------------------------------------------------------------


def test_parallel_run_all_matches_serial(tmp_path):
    serial = EvaluationHarness(benchmarks=FAST, use_cache=False)
    serial_runs = serial.run_all()

    par = make_harness(tmp_path)
    par_runs = par.run_all(parallel=2)

    assert [r.name for r in par_runs] == [r.name for r in serial_runs]
    for s, p in zip(serial_runs, par_runs):
        assert p.result.outputs == s.result.outputs
        assert p.result.system.twill.cycles == s.result.system.twill.cycles
        assert p.result.dswp_summary() == s.result.dswp_summary()

    # The rendered artefacts must be byte-identical across the two paths.
    assert table_6_1(par)["table"] == table_6_1(serial)["table"]
    assert table_6_2(par)["table"] == table_6_2(serial)["table"]


def test_parallel_run_warms_the_disk_cache(tmp_path, monkeypatch):
    h1 = make_harness(tmp_path)
    h1.run_all(parallel=2)
    assert h1.cache.stats()["entries"] == len(FAST)
    h2 = make_harness(tmp_path)
    monkeypatch.setattr(
        TwillCompiler,
        "compile_and_simulate",
        lambda *a, **k: pytest.fail("parallel run did not populate the disk cache"),
    )
    h2.run_all()


def test_parallel_one_equals_serial_path(tmp_path):
    h = make_harness(tmp_path)
    runs = h.run_all(parallel=1)  # must not spin up a pool
    assert [r.name for r in runs] == FAST


# ---------------------------------------------------------------------------
# shared() keying
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _reset_shared():
    yield
    EvaluationHarness.reset_shared()


def test_shared_returns_same_instance_for_same_key():
    assert EvaluationHarness.shared() is EvaluationHarness.shared()
    a = EvaluationHarness.shared(benchmarks=FAST)
    assert a is EvaluationHarness.shared(benchmarks=FAST)
    assert a.benchmark_names == FAST


def test_shared_keys_by_config_hash():
    default = EvaluationHarness.shared(benchmarks=FAST)
    changed = EvaluationHarness.shared(config=CompilerConfig(inline_threshold=10), benchmarks=FAST)
    assert default is not changed
    assert changed.config.inline_threshold == 10  # config no longer ignored


def test_shared_keys_by_benchmark_set():
    assert EvaluationHarness.shared(benchmarks=["mips"]) is not EvaluationHarness.shared(benchmarks=["gsm"])
    assert EvaluationHarness.shared(benchmarks=["mips"]).benchmark_names == ["mips"]


# ---------------------------------------------------------------------------
# functional check still guards cache loads
# ---------------------------------------------------------------------------


def test_cache_load_still_checks_functional_outputs(tmp_path):
    h1 = make_harness(tmp_path)
    h1.run("blowfish")
    # Corrupt the cached artefact's outputs: the next load must refuse it.
    key = h1._compile_key("blowfish")
    result = h1.cache.get(key)
    result.execution.outputs[0] ^= 1
    h1.cache.put(key, result)
    h2 = make_harness(tmp_path)
    with pytest.raises(AssertionError, match="functional outputs"):
        h2.run("blowfish")
