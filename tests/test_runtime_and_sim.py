"""Tests for the runtime primitives and the hybrid timing simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CompilerConfig, HLSConfig, RuntimeConfig
from repro.core.compiler import TwillCompiler
from repro.dswp import run_dswp
from repro.frontend import compile_c
from repro.interp import Profile, run_module
from repro.runtime import MessageBus, RoundRobinScheduler, TimedQueue, TimedSemaphore
from repro.runtime.interface import HWThreadInterface, ProcessorInterface
from repro.ir import Opcode
from repro.sim import ExecutionDomain, HybridSystem, ThreadAssignment, TimingSimulator
from repro.transforms import GlobalsToArguments, default_pipeline
from tests.conftest import PIPELINE_PROGRAM


# ---------------------------------------------------------------------------
# Runtime primitives
# ---------------------------------------------------------------------------


class TestTimedQueue:
    def test_fifo_latency_and_costs(self):
        q = TimedQueue(0, depth=8, latency=2, enqueue_cost=2, dequeue_cost=2)
        done = q.enqueue(10.0)
        assert done == 12.0
        got = q.dequeue(0.0)
        # value visible at 12 + 2 latency, plus 2 cycles of dequeue work
        assert got == 16.0

    def test_consumer_stalls_on_empty(self):
        q = TimedQueue(0, depth=4, latency=2)
        q.enqueue(100.0)
        q.dequeue(0.0)
        assert q.stats.consumer_stall_cycles > 0

    def test_producer_back_pressure(self):
        q = TimedQueue(0, depth=2, latency=1)
        q.enqueue(0.0)
        q.enqueue(0.0)
        assert not q.can_enqueue()
        q.dequeue(0.0)
        assert q.can_enqueue()

    def test_full_queue_delays_enqueue_until_space(self):
        q = TimedQueue(0, depth=1, latency=1, enqueue_cost=1, dequeue_cost=1)
        q.enqueue(0.0)
        first_out = q.dequeue(50.0)       # slot frees at 51
        done = q.enqueue(10.0)
        assert done >= first_out

    @given(st.integers(1, 16), st.lists(st.integers(0, 100), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_occupancy_never_exceeds_depth_plus_one(self, depth, ready_times):
        q = TimedQueue(0, depth=depth, latency=2)
        for t in ready_times:
            if q.can_enqueue():
                q.enqueue(float(t))
            else:
                q.dequeue(float(t))
        assert q.occupancy <= depth + 1

    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_dequeue_times_monotonic(self, times):
        q = TimedQueue(0, depth=64, latency=2)
        for t in times:
            q.enqueue(t)
        outs = [q.dequeue(0.0) for _ in times]
        assert all(b >= a for a, b in zip(outs, outs[1:]))


class TestSemaphoreBusScheduler:
    def test_semaphore_blocks_until_raise(self):
        sem = TimedSemaphore(0, initial=0)
        release = sem.raise_(100.0)
        done = sem.lower(0.0)
        assert done >= release

    def test_semaphore_costs(self):
        sem = TimedSemaphore(0, initial=1)
        assert sem.lower(0.0) == 2.0     # lower = 2 cycles minimum
        assert sem.raise_(10.0) == 11.0  # raise = 1 cycle

    def test_bus_serialises_contention(self):
        bus = MessageBus(latency=1)
        first = bus.request(5.0)
        second = bus.request(5.0)
        assert second > first
        assert bus.stats.transfers == 2

    def test_bus_processor_priority_is_not_delayed(self):
        bus = MessageBus(latency=1)
        bus.request(3.0)
        done = bus.request(3.0, processor=True)
        assert done == 4.0

    def test_round_robin_scheduler_charges_one_switch(self):
        sched = RoundRobinScheduler(switch_cost=60)
        assert sched.activate(1, 0.0) == 0.0          # first activation is free
        assert sched.activate(1, 10.0) == 0.0         # same thread: no switch
        assert sched.activate(2, 20.0) == 60.0        # real switch
        assert sched.switch_count == 1

    def test_interface_costs(self):
        config = RuntimeConfig()
        cpu = ProcessorInterface(config)
        hw = HWThreadInterface(config)
        assert cpu.operation_cycles(Opcode.PRODUCE) == 5
        assert cpu.worst_case_latency() == 5
        assert hw.operation_cycles(Opcode.CONSUME) == 2
        assert hw.operation_cycles(Opcode.LOAD) == 2
        assert hw.memory_visibility_delay() == 2


# ---------------------------------------------------------------------------
# Timing simulation
# ---------------------------------------------------------------------------


def _compiled_pipeline():
    module = compile_c(PIPELINE_PROGRAM)
    default_pipeline().run(module)
    GlobalsToArguments().run(module)
    execution = run_module(module, record_trace=True)
    profile = Profile.from_trace(module, execution.trace)
    dswp = run_dswp(module, profile=profile)
    return module, execution, dswp


class TestTimingSimulator:
    def test_pure_sw_slower_than_pure_hw(self):
        module, execution, _ = _compiled_pipeline()
        sim = TimingSimulator()
        sw = sim.simulate(execution.trace, ThreadAssignment.pure_software(module))
        hw = sim.simulate(execution.trace, ThreadAssignment.pure_hardware(module))
        assert sw.total_cycles > hw.total_cycles
        assert sw.events == hw.events == len(execution.trace)

    def test_twill_beats_pure_software(self):
        module, execution, dswp = _compiled_pipeline()
        sim = TimingSimulator()
        sw = sim.simulate(execution.trace, ThreadAssignment.pure_software(module))
        twill = sim.simulate(execution.trace, ThreadAssignment.from_partitioning(module, dswp.partitioning))
        assert twill.total_cycles < sw.total_cycles
        assert twill.forced_events == 0

    def test_queue_latency_monotonicity(self):
        module, execution, dswp = _compiled_pipeline()
        assignment = ThreadAssignment.from_partitioning(module, dswp.partitioning)
        cycles = []
        for latency in (2, 8, 32, 128):
            sim = TimingSimulator(RuntimeConfig(queue_latency=latency))
            cycles.append(sim.simulate(execution.trace, assignment).total_cycles)
        assert all(b >= a - 1e-9 for a, b in zip(cycles, cycles[1:]))

    def test_queue_depth_monotonicity(self):
        module, execution, dswp = _compiled_pipeline()
        assignment = ThreadAssignment.from_partitioning(module, dswp.partitioning)
        sim_small = TimingSimulator(RuntimeConfig(queue_depth=1))
        sim_big = TimingSimulator(RuntimeConfig(queue_depth=32))
        small = sim_small.simulate(execution.trace, assignment).total_cycles
        big = sim_big.simulate(execution.trace, assignment).total_cycles
        assert big <= small + 1e-9

    def test_assignment_thread_structure(self):
        module, execution, dswp = _compiled_pipeline()
        assignment = ThreadAssignment.from_partitioning(module, dswp.partitioning)
        assert len(assignment.software_threads()) == 1
        assert assignment.hardware_thread_count == dswp.partitioning.hardware_thread_count
        # Every instruction of every defined function maps to a known thread.
        for fn in module.defined_functions():
            for inst in fn.instructions():
                spec = assignment.by_id[assignment._map.get(id(inst), 0)]
                assert spec.domain in (ExecutionDomain.SOFTWARE, ExecutionDomain.HARDWARE)

    def test_empty_trace(self):
        from repro.interp.trace import Trace

        module = compile_c("int main(void){ return 0; }")
        sim = TimingSimulator()
        result = sim.simulate(Trace(), ThreadAssignment.pure_software(module))
        assert result.total_cycles == 0.0


class TestHybridSystemAndCompiler:
    def test_full_system_shapes(self):
        compiler = TwillCompiler(CompilerConfig())
        result = compiler.compile_and_simulate(PIPELINE_PROGRAM, name="pipeline")
        system = result.system
        # Functional correctness
        reference = run_module(compile_c(PIPELINE_PROGRAM)).outputs
        assert result.outputs == reference
        # Shape: Twill and pure HW beat pure SW; areas/power are positive and ordered.
        assert system.speedup_vs_software > 1.0
        assert system.hw_speedup_vs_software > 1.0
        assert system.pure_hardware.area.luts > 0
        assert system.hw_thread_area.luts > 0
        power = system.power_normalised()
        assert power["pure_hw"] < power["pure_sw"]
        assert 0.0 < power["twill"] <= 1.5

    def test_report_is_readable(self):
        compiler = TwillCompiler()
        result = compiler.compile_and_simulate(PIPELINE_PROGRAM, name="pipeline")
        text = result.report()
        assert "speedup vs pure SW" in text
        assert "queues" in text

    def test_runtime_sweep_api(self):
        compiler = TwillCompiler()
        result = compiler.compile_and_simulate(PIPELINE_PROGRAM, name="pipeline")
        slow = compiler.simulate_with_runtime(result, RuntimeConfig(queue_latency=128))
        fast = compiler.simulate_with_runtime(result, RuntimeConfig(queue_latency=2))
        assert slow.total_cycles >= fast.total_cycles

    def test_split_sweep_api(self):
        compiler = TwillCompiler()
        result = compiler.compile_and_simulate(PIPELINE_PROGRAM, name="pipeline")
        other = compiler.resimulate_with_split(result, sw_fraction=0.6)
        assert other.system.twill.cycles > 0

    def test_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RuntimeConfig(queue_depth=0).validate()
        with pytest.raises(ConfigError):
            RuntimeConfig(queue_width_bits=64).validate()
        with pytest.raises(ConfigError):
            HLSConfig(issue_width=0).validate()
        cfg = CompilerConfig()
        cfg.partition.sw_fraction = 2.0
        with pytest.raises(ConfigError):
            cfg.validate()
