"""Documentation health checks: the docs gate CI runs, plus existence and
cross-reference sanity of the user-facing documents themselves."""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from check_docstrings import missing_docstrings  # noqa: E402


def _read(*parts):
    with open(os.path.join(REPO_ROOT, *parts), encoding="utf-8") as fh:
        return fh.read()


def test_every_module_has_a_docstring():
    offenders = missing_docstrings()
    assert offenders == [], f"modules missing docstrings: {offenders}"


def test_readme_documents_the_cli_and_benchmark_mapping():
    readme = _read("README.md")
    for subcommand in ("repro run", "repro sweep", "repro table", "repro figure", "repro report", "repro cache"):
        assert subcommand in readme
    # The benchmark -> thesis artefact mapping must cover every harness file.
    bench_dir = os.path.join(REPO_ROOT, "benchmarks")
    for fname in os.listdir(bench_dir):
        if fname.startswith("test_") and fname.endswith(".py"):
            assert fname in readme, f"README does not map {fname} to its table/figure"


def test_architecture_doc_covers_every_package():
    doc = _read("docs", "ARCHITECTURE.md")
    src = os.path.join(REPO_ROOT, "src", "repro")
    packages = sorted(
        name for name in os.listdir(src) if os.path.isdir(os.path.join(src, name)) and name != "__pycache__"
    )
    for package in packages:
        assert f"repro.{package}" in doc, f"ARCHITECTURE.md does not document repro.{package}"


def test_caching_doc_matches_the_implementation():
    doc = _read("docs", "CACHING.md")
    from repro.eval.cache import CACHE_DIR_ENV, CACHE_HMAC_ENV, CACHE_SCHEMA_VERSION, DEFAULT_CACHE_DIR

    assert DEFAULT_CACHE_DIR in doc
    assert CACHE_DIR_ENV in doc
    assert CACHE_HMAC_ENV in doc
    assert f"schema version: {CACHE_SCHEMA_VERSION}" in doc.lower() or str(CACHE_SCHEMA_VERSION) in doc


def test_distributed_doc_covers_the_cli_surface():
    doc = _read("docs", "DISTRIBUTED.md")
    for needle in (
        "repro cache serve",
        "repro worker serve",
        "--workers",
        "--pool",
        "lease",
        "heartbeat",
        "REPRO_CACHE_HMAC_KEY",
        "REPRO_SERVICE_TOKEN",
        "byte-identical",
    ):
        assert needle in doc, f"DISTRIBUTED.md does not mention {needle!r}"


def test_exploration_doc_covers_the_engine_surface():
    doc = _read("docs", "EXPLORATION.md")
    from repro.explore.strategies import STRATEGIES

    for strategy in STRATEGIES:
        assert f"`{strategy}`" in doc, f"EXPLORATION.md does not document strategy {strategy!r}"
    for needle in (
        "repro explore",
        "--budget",
        "--seed",
        "Pareto",
        "journal",
        "byte-identical",
        "explore-smoke",
    ):
        assert needle in doc, f"EXPLORATION.md does not mention {needle!r}"
    # Every dimension of the default CLI space is documented.
    from repro.explore.space import default_space

    for dimension in default_space().dimensions:
        assert f"`{dimension.name}`" in doc, (
            f"EXPLORATION.md does not document dimension {dimension.name!r}"
        )


def test_reporting_doc_covers_the_viz_surface():
    doc = _read("docs", "REPORTING.md")
    for needle in (
        "repro report --html",
        "--svg",
        "render",
        "render_key",
        "byte-identical",
        "prefers-color-scheme",
    ):
        assert needle in doc, f"REPORTING.md does not mention {needle!r}"
    # Every renderable figure id is documented.
    from repro.eval.experiments import RENDER_FIGURE_IDS

    for figure_id in RENDER_FIGURE_IDS:
        assert f"`{figure_id}`" in doc, f"REPORTING.md does not document figure {figure_id}"


def test_observability_doc_covers_the_surface():
    doc = _read("docs", "OBSERVABILITY.md")
    from repro.obs.tracing import PARENT_SPAN_HEADER, TRACE_ENV, TRACE_ID_HEADER
    from repro.obs.logs import LOG_LEVEL_ENV

    for needle in (
        TRACE_ENV,
        TRACE_ID_HEADER,
        PARENT_SPAN_HEADER,
        LOG_LEVEL_ENV,
        "repro trace",
        "--gantt",
        "repro cluster status",
        "GET /metrics",
        "/healthz",
        "byte-identical",
        "repro_tasks_submitted_total",
        "repro_lease_latency_seconds",
        "repro_cache_hits_total",
        "repro_workers_live",
        "repro_stage_seconds_total",
    ):
        assert needle in doc, f"OBSERVABILITY.md does not mention {needle!r}"
    # The cross-reference web: each sibling doc points at the telemetry doc.
    for sibling in ("ARCHITECTURE.md", "DISTRIBUTED.md"):
        assert "OBSERVABILITY.md" in _read("docs", sibling), f"{sibling} does not link OBSERVABILITY.md"
