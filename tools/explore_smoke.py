#!/usr/bin/env python3
"""CI gate for the exploration engine: budgeted search, cached warm re-run.

Runs a small budgeted search twice against one cache directory and asserts
the subsystem's two headline guarantees:

1. the cold search terminates within budget and finds a **non-empty Pareto
   frontier** whose points are all evaluated candidates;
2. the warm re-run **evaluates nothing** (journal replay + content-addressed
   candidate cache) and emits **byte-identical** frontier JSON.

Usage::

    python tools/explore_smoke.py [--workload mips] [--strategy annealing]
                                  [--budget 8] [--seed 7] [--jobs 2]

Exit code 0 = both guarantees hold.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.eval.harness import EvaluationHarness  # noqa: E402
from repro.explore.driver import ExplorationDriver  # noqa: E402


def run_once(cache_dir: str, args: argparse.Namespace):
    harness = EvaluationHarness(benchmarks=[args.workload], cache_dir=cache_dir)
    driver = ExplorationDriver(
        harness,
        args.workload,
        strategy=args.strategy,
        budget=args.budget,
        seed=args.seed,
        jobs=args.jobs,
    )
    start = time.perf_counter()
    result = driver.run()
    elapsed = time.perf_counter() - start
    return result, driver.stats, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="mips")
    parser.add_argument("--strategy", default="annealing")
    parser.add_argument("--budget", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--cache-dir", default=None, help="default: a fresh temp directory")
    args = parser.parse_args(argv)

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="explore_smoke_")
    failures = []

    cold, cold_stats, cold_s = run_once(cache_dir, args)
    cold_json = json.dumps(cold.to_json_dict(), indent=2, sort_keys=True)
    print(
        f"cold: {cold_stats['evaluated']} candidates evaluated "
        f"({cold_stats['executed']} executed) in {cold_s:.1f}s, "
        f"frontier size {len(cold.frontier)}"
    )
    if len(cold.frontier) == 0:
        failures.append("cold search produced an empty frontier")
    if cold_stats["evaluated"] > args.budget:
        failures.append(
            f"budget exceeded: {cold_stats['evaluated']} > {args.budget}"
        )
    evaluated_params = [c.params() for c, _ in cold.evaluations]
    for row in cold.frontier.to_rows():
        if row["params"] not in evaluated_params:
            failures.append(f"frontier point {row['params']} was never evaluated")

    warm, warm_stats, warm_s = run_once(cache_dir, args)
    warm_json = json.dumps(warm.to_json_dict(), indent=2, sort_keys=True)
    print(
        f"warm: {warm_stats['evaluated']} candidates "
        f"({warm_stats['executed']} executed, {warm_stats['replayed']} replayed) "
        f"in {warm_s:.1f}s"
    )
    if warm_stats["executed"] != 0:
        failures.append(
            f"warm re-run re-evaluated {warm_stats['executed']} candidates (expected 0)"
        )
    if warm_json != cold_json:
        failures.append("warm frontier JSON differs from the cold run")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"ok: {args.strategy} search over {args.workload} "
        f"(budget {args.budget}, seed {args.seed}) is cached, budgeted and deterministic"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
