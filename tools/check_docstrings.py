#!/usr/bin/env python3
"""Docs gate: every module under ``src/repro/`` must carry a module docstring.

Run as a script (CI does) or import :func:`missing_docstrings` (the test
suite does).  Exits non-zero listing the offending files, so an undocumented
module fails the build before it fails a reader.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"


def missing_docstrings(root: Path = SOURCE_ROOT) -> List[Path]:
    """Paths of ``*.py`` modules under *root* lacking a non-empty docstring."""
    offenders: List[Path] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            offenders.append(path)
    return offenders


def main() -> int:
    offenders = missing_docstrings()
    if offenders:
        print("modules missing a module docstring:", file=sys.stderr)
        for path in offenders:
            print(f"  {path.relative_to(REPO_ROOT)}", file=sys.stderr)
        return 1
    count = len(list(SOURCE_ROOT.rglob("*.py")))
    print(f"ok: all {count} modules under src/repro/ have module docstrings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
