#!/usr/bin/env python3
"""Run-history smoke: the regression gate must fire, and only when it should.

Seeds a temporary ``$REPRO_HISTORY`` ledger with a stable baseline of
``repro report`` wall times (small deterministic jitter, no regression),
then:

1. ``repro history check`` on the seeded baseline must exit 0;
2. after appending a synthetic 2x-slower run, ``repro history check`` must
   exit non-zero and name the regressed metric;
3. ``repro history show`` and ``repro history trend --svg-dir`` must render
   (the trend step writes real SVG files).

This is the CI proof that the regression detector both fires and stays
quiet — a gate that can never fail, or never pass, protects nothing.

Used by the ``obs-smoke`` CI job:

    python tools/history_smoke.py

Exits 0 on success, 1 with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import history as obs_history  # noqa: E402

#: Baseline wall times: realistic jitter, well inside the 1.5x threshold.
BASELINE_SECONDS = (10.0, 10.4, 9.8, 10.1, 10.2, 9.9)

#: The synthetic regression: 2x the baseline median.
REGRESSED_SECONDS = 20.2


def fail(message: str) -> int:
    print(f"history-smoke: FAIL — {message}", file=sys.stderr)
    return 1


def repro_history(history_dir: Path, *args: str) -> subprocess.CompletedProcess:
    cmd: List[str] = [
        sys.executable, "-m", "repro.cli", "history", *args, "--history", str(history_dir),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_HISTORY", None)  # --history is explicit

    return subprocess.run(cmd, env=env, capture_output=True, text=True, timeout=60.0)


def seed(history_dir: Path, wall_seconds: float) -> None:
    record = obs_history.record_run(
        "report",
        {"wall_seconds": wall_seconds, "cache_hit_rate": 0.9},
        attrs={"benchmarks": "all", "workers": 2},
        directory=str(history_dir),
    )
    if record is None:
        raise AssertionError("record_run refused to write the seed record")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-history-smoke-") as tmp:
        history_dir = Path(tmp) / "history"
        for seconds in BASELINE_SECONDS:
            seed(history_dir, seconds)

        check = repro_history(history_dir, "check")
        if check.returncode != 0:
            return fail(
                f"check flagged the clean baseline (exit {check.returncode}): "
                f"{check.stdout or check.stderr}"
            )
        if "ok" not in check.stdout:
            return fail(f"clean check did not report ok: {check.stdout!r}")
        print("history-smoke: clean baseline passes", flush=True)

        seed(history_dir, REGRESSED_SECONDS)
        check = repro_history(history_dir, "check", "--json")
        if check.returncode == 0:
            return fail(f"check missed a 2x slowdown: {check.stdout}")
        regressions = json.loads(check.stdout)["regressions"]
        if not any(reg["metric"] == "wall_seconds" for reg in regressions):
            return fail(f"regression list lacks wall_seconds: {regressions}")
        ratio = regressions[0]["ratio"]
        print(f"history-smoke: 2x slowdown flagged (ratio {ratio:.2f}x)", flush=True)

        show = repro_history(history_dir, "show")
        if show.returncode != 0 or "report" not in show.stdout:
            return fail(f"history show failed: {show.stdout or show.stderr}")

        svg_dir = Path(tmp) / "svg"
        trend = repro_history(history_dir, "trend", "--svg-dir", str(svg_dir))
        if trend.returncode != 0:
            return fail(f"history trend failed: {trend.stderr}")
        svgs = sorted(svg_dir.glob("*.svg"))
        if not svgs:
            return fail("history trend --svg-dir wrote no SVG files")
        for svg in svgs:
            if "<svg" not in svg.read_text(encoding="utf-8"):
                return fail(f"{svg.name} is not an SVG document")
        print(f"history-smoke: trend rendered {len(svgs)} SVG(s)", flush=True)

    print("history-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
