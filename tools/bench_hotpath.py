#!/usr/bin/env python
"""Before/after micro-benchmark of the three hot-path overhauls.

Each leg times the new implementation against its still-selectable legacy
fallback **in the same process, on the same inputs**, and verifies the two
produce identical output before reporting a single number:

* **frontend** — batched-regex lexer + table-driven LL(1) parser
  (``REPRO_PARSER`` default) vs the recursive-descent reference
  (``REPRO_PARSER=rd``), parsing every builtin workload source; per-stage
  lex/parse seconds come from the :mod:`repro.perf` collectors.
* **replay** — readiness-driven heap scheduler (``engine="ready"``,
  ``REPRO_REPLAY`` default) vs the cooperative poll engine
  (``engine="poll"``), replaying each workload's trace under its pure-SW,
  pure-HW and DSWP-partitioned assignments.
* **explore** — incremental candidate evaluation (memoized shared
  re-partition stage) vs re-running DSWP for every candidate, over the
  report's 3x3 split-target x queue-depth space.

Results land in ``BENCH_hotpath.json`` (override with ``--out``).  Exits
non-zero if any leg's outputs diverge or any leg's new implementation is
slower than its legacy fallback beyond ``--tolerance``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import perf  # noqa: E402
from repro.frontend.lexer import tokenize  # noqa: E402
from repro.frontend.parser import RecursiveDescentParser  # noqa: E402
from repro.frontend.tableparser import TableParser  # noqa: E402
from repro.workloads import all_workloads  # noqa: E402

#: Workloads whose traces the replay leg simulates (kept small: replay cost
#: scales with dynamic instruction count, and two shapes suffice).
REPLAY_WORKLOADS = ("blowfish", "mips")


def _timed(fn):
    """Run *fn*, returning (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_frontend(repeats: int) -> dict:
    """Leg (a): lex+parse every builtin workload with both parsers."""
    sources = [w.source for w in all_workloads()]

    def run(parser_cls):
        with perf.collect() as timings:
            units = []
            for _ in range(repeats):
                for source in sources:
                    with perf.stage("lex"):
                        tokens = tokenize(source)
                    with perf.stage("parse"):
                        units.append(parser_cls(tokens).parse_translation_unit())
            return units, timings

    table_seconds, (table_units, table_timings) = _timed(lambda: run(TableParser))
    rd_seconds, (rd_units, _) = _timed(lambda: run(RecursiveDescentParser))
    return {
        "after_seconds": round(table_seconds, 4),
        "before_seconds": round(rd_seconds, 4),
        "speedup": round(rd_seconds / max(table_seconds, 1e-9), 3),
        "stages": table_timings.as_dict(),
        "identical": table_units == rd_units,
        "sources": len(sources),
        "repeats": repeats,
    }


def bench_replay(repeats: int) -> dict:
    """Leg (b): replay each workload trace with both timing engines."""
    import dataclasses

    from repro.core.compiler import TwillCompiler
    from repro.dswp import run_dswp
    from repro.interp import Profile, run_module
    from repro.sim import ThreadAssignment, TimingSimulator
    from repro.workloads import get_workload

    jobs = []
    for name in REPLAY_WORKLOADS:
        compiler = TwillCompiler()
        module = compiler.compile_module(get_workload(name).source, name)
        execution = run_module(module, record_trace=True)
        profile = Profile.from_trace(module, execution.trace)
        dswp = run_dswp(module, profile=profile)
        for assignment in (
            ThreadAssignment.pure_software(module),
            ThreadAssignment.pure_hardware(module),
            ThreadAssignment.from_partitioning(module, dswp.partitioning),
        ):
            jobs.append((execution.trace, assignment))

    sim = TimingSimulator()

    def run(engine):
        results = []
        for _ in range(repeats):
            for trace, assignment in jobs:
                results.append(sim.simulate(trace, assignment, engine=engine))
        return results

    ready_seconds, ready = _timed(lambda: run("ready"))
    poll_seconds, poll = _timed(lambda: run("poll"))
    identical = all(
        dataclasses.asdict(a) == dataclasses.asdict(b) for a, b in zip(ready, poll)
    )
    return {
        "after_seconds": round(ready_seconds, 4),
        "before_seconds": round(poll_seconds, 4),
        "speedup": round(poll_seconds / max(ready_seconds, 1e-9), 3),
        "identical": identical,
        "traces": len(jobs),
        "repeats": repeats,
    }


def bench_explore() -> dict:
    """Leg (c): evaluate the report's 9-candidate space both ways.

    The "before" path re-runs DSWP per candidate (memo cleared around every
    point, no stage cache) — exactly what evaluation did before the
    re-partition stage became content-addressed and shared.
    """
    from repro.config import CompilerConfig
    from repro.explore import evaluate
    from repro.explore.space import report_space

    space = report_space()
    config = CompilerConfig()
    candidates = list(space.candidates())
    dswp_runs = []
    real_repartition = evaluate.repartition

    def counting(*args, **kwargs):
        dswp_runs.append(1)
        return real_repartition(*args, **kwargs)

    evaluate.repartition = counting
    try:
        with tempfile.TemporaryDirectory(prefix="repro-hotpath-") as workdir:
            cache_root = os.path.join(workdir, "cache")

            def point(candidate, incremental):
                if not incremental:
                    evaluate._DSWP_MEMO.clear()
                return evaluate.compute_explore_point(
                    "blowfish",
                    config,
                    cache_root if incremental else None,
                    candidate.params(),
                    space.to_dict(),
                )

            # Warm the compile artifact first so neither variant pays for it.
            point(candidates[0], True)
            evaluate._DSWP_MEMO.clear()
            dswp_runs.clear()

            after_seconds, after = _timed(
                lambda: [point(c, True) for c in candidates]
            )
            after_runs = len(dswp_runs)
            dswp_runs.clear()
            before_seconds, before = _timed(
                lambda: [point(c, False) for c in candidates]
            )
            before_runs = len(dswp_runs)
    finally:
        evaluate.repartition = real_repartition
        evaluate._DSWP_MEMO.clear()

    return {
        "after_seconds": round(after_seconds, 4),
        "before_seconds": round(before_seconds, 4),
        "speedup": round(before_seconds / max(after_seconds, 1e-9), 3),
        "identical": json.dumps(after, sort_keys=True) == json.dumps(before, sort_keys=True),
        "candidates": len(candidates),
        "dswp_runs_after": after_runs,
        "dswp_runs_before": before_runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_hotpath.json", help="timing output file")
    parser.add_argument(
        "--repeats", type=int, default=3, help="frontend/replay timing repetitions (default: 3)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_HOTPATH_TOLERANCE", "0.9")),
        help="fail a leg if its speedup falls below this (default: 0.9, i.e. "
        "the new path may not be >10%% slower than the legacy one)",
    )
    args = parser.parse_args(argv)

    record = {
        "frontend": bench_frontend(args.repeats),
        "replay": bench_replay(args.repeats),
        "explore": bench_explore(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))

    # Append the timings to the persistent run ledger so `repro history
    # check` can flag regressions across CI runs (never fails the bench).
    from repro.obs import history as obs_history

    obs_history.record_run(
        "bench_hotpath",
        {
            f"{leg}_{side}_seconds": record[leg][f"{side}_seconds"]
            for leg in ("frontend", "replay", "explore")
            for side in ("after", "before")
        },
        attrs={"repeats": args.repeats},
    )

    failures = []
    for leg in ("frontend", "replay", "explore"):
        if not record[leg]["identical"]:
            failures.append(f"{leg}: new and legacy implementations diverge")
        if record[leg]["speedup"] < args.tolerance:
            failures.append(
                f"{leg}: speedup {record[leg]['speedup']}x below tolerance {args.tolerance}x"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "ok: "
        + ", ".join(f"{leg} {record[leg]['speedup']}x" for leg in ("frontend", "replay", "explore"))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
