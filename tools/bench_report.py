#!/usr/bin/env python
"""Timed smoke benchmark of ``repro report`` for CI and the perf trajectory.

Runs the full report three times against a fresh cache directory:

1. **cold, parallel** — compiles every workload and computes every sweep
   point through the task-graph scheduler;
2. **warm, parallel** — must be byte-identical to the cold run and finish in
   under ``--max-warm-fraction`` (default 0.25) of the cold wall time, which
   is the regression gate for the cache + scheduler fast path;
3. **warm, serial** — must also be byte-identical, which is the regression
   gate for serial/parallel determinism.

The cold run is also gated against the checked-in ``BENCH_report.json``
baseline: if it takes more than ``--max-cold-ratio`` (default 1.25) times
the baseline's cold wall time, the run fails.  That is the CI guard that
keeps hot-path regressions from landing silently.

Worker count defaults to *auto*: 2 processes when the machine has at least
2 CPUs, otherwise serial — on a single core two workers only timeshare it
and the process-pool overhead makes the "parallel" run strictly slower
than serial, which would poison the perf record.  Pass ``--parallel N``
explicitly to override (``--parallel 0`` forces serial).

Timings land in a JSON file (``BENCH_report.json`` by default) so successive
CI runs leave a comparable perf record.  Exits non-zero on any violated
invariant.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def run_report(cache_dir: str, parallel: int | None, benchmarks: str | None) -> tuple[float, str]:
    """One ``repro report --json`` invocation; returns (seconds, stdout)."""
    cmd = [sys.executable, "-m", "repro.cli", "report", "--json", "--cache-dir", cache_dir]
    if parallel is not None:
        cmd += ["--parallel", str(parallel)]
    if benchmarks:
        cmd += ["--benchmarks", benchmarks]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    start = time.perf_counter()
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env, timeout=1200)
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        raise SystemExit(f"report run failed ({' '.join(cmd)}):\n{proc.stderr}")
    return elapsed, proc.stdout


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        help="worker processes; 0 forces serial (default: auto — 2 if the "
        "machine has >= 2 CPUs, else serial)",
    )
    parser.add_argument("--benchmarks", help="comma-separated workload subset (default: all)")
    parser.add_argument("--out", default="BENCH_report.json", help="timing output file")
    parser.add_argument(
        "--max-warm-fraction",
        type=float,
        default=float(os.environ.get("BENCH_MAX_WARM_FRACTION", "0.25")),
        help="fail if warm wall time exceeds this fraction of cold (default: 0.25)",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "BENCH_report.json"),
        help="checked-in record to gate the cold run against (default: the "
        "repo's BENCH_report.json; missing file disables the gate)",
    )
    parser.add_argument(
        "--max-cold-ratio",
        type=float,
        default=float(os.environ.get("BENCH_MAX_COLD_RATIO", "1.25")),
        help="fail if cold wall time exceeds this multiple of the baseline's "
        "cold time (default: 1.25; <= 0 disables)",
    )
    args = parser.parse_args(argv)

    if args.parallel is None:
        parallel = 2 if (os.cpu_count() or 1) >= 2 else 0
    else:
        parallel = max(args.parallel, 0)
    workers = parallel if parallel > 0 else None

    # Read the baseline *before* the out file (often the same path) is
    # overwritten with this run's record.
    baseline_cold = None
    if args.max_cold_ratio > 0 and os.path.exists(args.baseline):
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline_cold = json.load(fh).get("cold_parallel_seconds")
        except (OSError, ValueError):
            baseline_cold = None

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as workdir:
        cache_dir = os.path.join(workdir, "cache")
        cold_seconds, cold_out = run_report(cache_dir, workers, args.benchmarks)
        warm_seconds, warm_out = run_report(cache_dir, workers, args.benchmarks)
        serial_seconds, serial_out = run_report(cache_dir, None, args.benchmarks)

    failures = []
    if warm_out != cold_out:
        failures.append("warm parallel output differs from cold parallel output")
    if serial_out != cold_out:
        failures.append("serial output differs from parallel output")
    warm_fraction = warm_seconds / max(cold_seconds, 1e-9)
    if warm_fraction >= args.max_warm_fraction:
        failures.append(
            f"warm run took {warm_fraction:.1%} of cold ({warm_seconds:.2f}s / "
            f"{cold_seconds:.2f}s), budget is {args.max_warm_fraction:.0%}"
        )
    cold_ratio = None
    if baseline_cold:
        cold_ratio = cold_seconds / baseline_cold
        if cold_ratio > args.max_cold_ratio:
            failures.append(
                f"cold run took {cold_ratio:.2f}x the baseline "
                f"({cold_seconds:.2f}s vs {baseline_cold:.2f}s), "
                f"budget is {args.max_cold_ratio:.2f}x"
            )

    record = {
        "benchmarks": args.benchmarks or "all",
        "parallel": parallel,
        "baseline_cold_seconds": baseline_cold,
        "cold_ratio_to_baseline": round(cold_ratio, 4) if cold_ratio is not None else None,
        "cold_parallel_seconds": round(cold_seconds, 3),
        "warm_parallel_seconds": round(warm_seconds, 3),
        "warm_serial_seconds": round(serial_seconds, 3),
        "warm_fraction_of_cold": round(warm_fraction, 4),
        "outputs_byte_identical": not failures or all("output" not in f for f in failures),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))

    # Append the timings to the persistent run ledger so `repro history
    # check` can flag regressions across CI runs (never fails the bench).
    from repro.obs import history as obs_history

    obs_history.record_run(
        "bench_report",
        {
            "cold_parallel_seconds": cold_seconds,
            "warm_parallel_seconds": warm_seconds,
            "warm_serial_seconds": serial_seconds,
            "warm_fraction_of_cold": warm_fraction,
        },
        attrs={"benchmarks": args.benchmarks or "all", "parallel": parallel},
    )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    baseline_note = (
        f", {cold_ratio:.2f}x baseline" if cold_ratio is not None else ""
    )
    print(
        f"ok: cold {cold_seconds:.2f}s{baseline_note}, warm {warm_seconds:.2f}s "
        f"({warm_fraction:.1%} of cold), outputs byte-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
