#!/usr/bin/env python3
"""Localhost telemetry-plane smoke: collector + dashboard + alerts end-to-end.

Starts a miniature observed cluster on 127.0.0.1 — a standalone span
collector (``repro collect serve``), one ``repro cache serve`` service and
two ``repro worker serve`` daemons, every process pointed at the collector
via ``REPRO_TRACE=http://…`` — and asserts, in two phases:

* **live phase** — the smoke itself serves a coordinator on the port the
  workers poll (the evaluation itself finishes in seconds, far too fast to
  scrape mid-run, so the smoke holds the cluster open deliberately): both
  workers register, ``repro alerts check --json`` is green, and ``repro
  dash --snapshot`` writes a self-contained dashboard HTML page naming
  both workers (the CI artifact);
* **run phase** — the held coordinator is released and a distributed
  ``repro report --workers`` binds the same port (the workers ride out the
  hand-off on their retry budget).  Afterwards the collector's merged
  trace must be **coherent**: every line parses, the report's spans share
  a single trace id, and coordinator-side (``cli``), worker-side and
  cache-service spans are all present in that one trace;
  ``repro trace --summary`` renders the merged file unchanged; and the
  report's JSON output is byte-identical to an untraced cold serial run —
  shipping spans may never change computed results.

Used by the ``dash-smoke`` CI job; handy manually:

    python tools/dash_smoke.py --benchmarks blowfish,mips

Exits 0 on success, 1 with a diagnostic on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def free_port() -> int:
    """Ask the kernel for a currently free TCP port (slightly racy, fine here)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def base_env(tmp: Path) -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_WORKER_SELF_DESTRUCT", None)
    env.pop("REPRO_TRACE", None)
    env.pop("REPRO_PROFILE", None)
    # A young, isolated ledger: the alerts run must not inherit whatever
    # regression state the invoking checkout's .repro_history carries.
    env["REPRO_HISTORY"] = str(tmp / "history")
    return env


def repro_cmd(*args: str) -> List[str]:
    return [sys.executable, "-m", "repro.cli", *args]


def wait_for_http(url: str, timeout: float) -> None:
    deadline = time.time() + timeout
    while True:
        try:
            with urllib.request.urlopen(url, timeout=2.0):
                return
        except OSError:
            if time.time() >= deadline:
                raise RuntimeError(f"{url} did not come up within {timeout:.0f}s")
            time.sleep(0.2)


def fail(message: str) -> int:
    print(f"dash-smoke: FAIL — {message}", file=sys.stderr)
    return 1


def wait_for_workers(coordinator_url: str, expected: int, timeout: float) -> List[str]:
    """Poll ``/status`` until *expected* workers are registered."""
    from repro.eval.remote import protocol

    deadline = time.time() + timeout
    while True:
        try:
            status = protocol.http_get_json(f"{coordinator_url}/status", timeout=5.0)
            workers = status.get("workers") or []
            if len(workers) >= expected:
                return workers
        except protocol.TRANSPORT_ERRORS:
            pass
        if time.time() >= deadline:
            raise RuntimeError(
                f"only saw workers {workers} within {timeout:.0f}s, expected {expected}"
            )
        time.sleep(0.3)


def check_merged_trace(sink: Path) -> Optional[str]:
    """Assert the merged trace is coherent; returns an error or ``None``."""
    if not sink.exists():
        return f"collector sink {sink} was never written"
    raw = sink.read_text(encoding="utf-8")
    if not raw.endswith("\n"):
        return "collector sink ends with a partial line"
    records = []
    for index, line in enumerate(raw.splitlines(), 1):
        try:
            records.append(json.loads(line))
        except ValueError:
            return f"collector sink line {index} is not valid JSON"
    if not records:
        return "collector sink is empty"
    # The report's spans must share one trace: take the dominant trace id
    # (service registrations and health probes are never traced, so in this
    # single-run smoke the report *is* the dominant trace).
    by_trace = Counter(record["trace_id"] for record in records)
    trace_id, count = by_trace.most_common(1)[0]
    if count < len(records) * 0.9:
        return (
            f"merged trace is incoherent: dominant trace {trace_id[:12]} covers "
            f"only {count}/{len(records)} spans ({len(by_trace)} trace ids seen)"
        )
    services = {record.get("service") for record in records
                if record["trace_id"] == trace_id}
    for required in ("cli", "worker", "cache"):
        if required not in services:
            return (
                f"merged trace {trace_id[:12]} has no '{required}' spans "
                f"(saw {sorted(filter(None, services))})"
            )
    workers = {record.get("worker") for record in records
               if record["trace_id"] == trace_id and record.get("service") == "worker"}
    print(
        f"dash-smoke: merged trace ok — {len(records)} spans, single trace "
        f"{trace_id[:12]}, services {sorted(filter(None, services))}, "
        f"{len(workers)} worker lane(s)",
        flush=True,
    )
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default="blowfish,mips")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="overall budget (seconds)")
    parser.add_argument("--artifact", default="dash_out",
                        help="directory for the dashboard HTML snapshot artifact")
    args = parser.parse_args(argv)

    from repro.eval.remote.coordinator import Coordinator, start_coordinator_server

    collector_port = free_port()
    cache_port = free_port()
    collector_url = f"http://127.0.0.1:{collector_port}"
    cache_url = f"http://127.0.0.1:{cache_port}"
    artifact_dir = Path(args.artifact)
    artifact_dir.mkdir(parents=True, exist_ok=True)

    processes: List[subprocess.Popen] = []
    with tempfile.TemporaryDirectory(prefix="repro-dash-smoke-") as tmp_name:
        tmp = Path(tmp_name)
        env = base_env(tmp)
        traced_env = dict(env)
        traced_env["REPRO_TRACE"] = collector_url
        sink = tmp / "merged.jsonl"
        held_coordinator = None
        try:
            collector = subprocess.Popen(
                repro_cmd("collect", "serve", "--sink", str(sink),
                          "--port", str(collector_port)),
                env=env,
            )
            processes.append(collector)
            wait_for_http(f"{collector_url}/healthz", 30.0)
            print(f"dash-smoke: collector up at {collector_url}", flush=True)

            cache_server = subprocess.Popen(
                repro_cmd("cache", "serve", "--cache-dir", str(tmp / "cache"),
                          "--port", str(cache_port)),
                env=traced_env,
            )
            processes.append(cache_server)
            wait_for_http(f"{cache_url}/healthz", 30.0)
            print(f"dash-smoke: cache service up at {cache_url}", flush=True)

            # Live phase: hold a coordinator open on the port the workers
            # poll, so alerts and the dashboard scrape a populated cluster.
            held_coordinator = start_coordinator_server(Coordinator(), port=0)
            coordinator_port = held_coordinator.server_address[1]
            coordinator_url = held_coordinator.url
            print(f"dash-smoke: holding coordinator open at {coordinator_url}",
                  flush=True)

            workers = [
                subprocess.Popen(
                    repro_cmd("worker", "serve",
                              "--coordinator", coordinator_url,
                              "--cache-dir", cache_url,
                              "--name", f"dash-smoke-{index}",
                              "--poll-wait", "2"),
                    env=traced_env,
                )
                for index in (1, 2)
            ]
            processes.extend(workers)
            registered = wait_for_workers(coordinator_url, expected=2, timeout=60.0)
            print(f"dash-smoke: workers registered: {sorted(registered)}", flush=True)

            alerts = subprocess.run(
                repro_cmd("alerts", "check", "--json",
                          "--coordinator", coordinator_url,
                          "--cache", cache_url),
                env=env, capture_output=True, text=True, timeout=60.0,
            )
            if alerts.returncode != 0:
                print(alerts.stdout, file=sys.stderr)
                print(alerts.stderr, file=sys.stderr)
                return fail("`repro alerts check` fired on a healthy live cluster")
            verdict = json.loads(alerts.stdout)
            if not verdict.get("ok") or verdict.get("alerts"):
                return fail(f"alerts check returned a non-green verdict: {verdict}")
            print("dash-smoke: alerts check green against the live coordinator",
                  flush=True)

            snapshot_path = artifact_dir / "dashboard.html"
            dash = subprocess.run(
                repro_cmd("dash", "--coordinator", coordinator_url,
                          "--cache", cache_url,
                          "--snapshot", str(snapshot_path)),
                env=env, capture_output=True, text=True, timeout=60.0,
            )
            if dash.returncode != 0:
                print(dash.stderr, file=sys.stderr)
                return fail("`repro dash --snapshot` exited non-zero")
            page = snapshot_path.read_text(encoding="utf-8")
            for needle in ("repro cluster dashboard", "dash-smoke-1", "dash-smoke-2"):
                if needle not in page:
                    return fail(f"dashboard snapshot lacks {needle!r}")
            print(f"dash-smoke: dashboard snapshot written to {snapshot_path}",
                  flush=True)

            # Run phase: release the port; the report's embedded coordinator
            # binds it and the workers ride the hand-off on their retry
            # budget (5 consecutive failures, 1s apart).
            held_coordinator.shutdown()
            held_coordinator.server_close()
            held_coordinator = None
            print(f"dash-smoke: running distributed report ({args.benchmarks})",
                  flush=True)
            started = time.time()
            report = subprocess.run(
                repro_cmd("report", "--json",
                          "--benchmarks", args.benchmarks,
                          "--cache-dir", cache_url,
                          "--workers", f"127.0.0.1:{coordinator_port}"),
                env=traced_env, capture_output=True, text=True, timeout=args.timeout,
            )
            if report.returncode != 0:
                print(report.stderr, file=sys.stderr)
                return fail("distributed report exited non-zero")
            print(f"dash-smoke: distributed report done in "
                  f"{time.time() - started:.1f}s", flush=True)

            # Stop the services cleanly: their atexit shutdown drains any
            # spans still queued in their remote sinks.
            for process in (cache_server, *workers):
                process.terminate()
            for process in (cache_server, *workers):
                try:
                    process.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    process.kill()

            error = check_merged_trace(sink)
            if error:
                return fail(error)

            summary = subprocess.run(
                repro_cmd("trace", "--summary", str(sink)),
                env=env, capture_output=True, text=True, timeout=60.0,
            )
            if summary.returncode != 0 or not summary.stdout.strip():
                print(summary.stderr, file=sys.stderr)
                return fail("`repro trace --summary` could not render the merged trace")
            print("dash-smoke: `repro trace --summary` renders the merged trace",
                  flush=True)

            print("dash-smoke: running untraced cold serial report for comparison",
                  flush=True)
            serial = subprocess.run(
                repro_cmd("report", "--json",
                          "--benchmarks", args.benchmarks,
                          "--cache-dir", str(tmp / "serial-cache")),
                env=env, capture_output=True, text=True,
                timeout=max(60.0, args.timeout - (time.time() - started)),
            )
            if serial.returncode != 0:
                print(serial.stderr, file=sys.stderr)
                return fail("serial report exited non-zero")
            if report.stdout != serial.stdout:
                return fail("traced distributed output differs from untraced serial output")
            json.loads(report.stdout)  # well-formed, not just equal

            print("dash-smoke: OK — collector, dashboard, alerts and "
                  "byte-identity all hold")
            return 0
        finally:
            if held_coordinator is not None:
                held_coordinator.shutdown()
                held_coordinator.server_close()
            for process in processes:
                if process.poll() is None:
                    process.terminate()
            for process in processes:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()


if __name__ == "__main__":
    sys.exit(main())
