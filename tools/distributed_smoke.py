#!/usr/bin/env python3
"""Localhost distributed-execution smoke: the end-to-end acceptance check.

Starts a full miniature cluster on 127.0.0.1 — one ``repro cache serve``
service, two ``repro worker serve`` daemons, and a ``repro report
--workers`` run whose embedded coordinator they poll — then runs the same
report serially against a *separate, cold* cache and asserts the two JSON
outputs are byte-identical.  One worker is started with the
``REPRO_WORKER_SELF_DESTRUCT`` crash hook armed so it hard-exits the first
time it leases a sweep task: the run completing anyway (via lease-timeout
reassignment to the surviving worker) is part of the check.

Used by the ``distributed-smoke`` CI job and by
``tests/test_remote.py::test_distributed_smoke_localhost``; handy manually:

    python tools/distributed_smoke.py --benchmarks blowfish

Exits 0 on success, 1 with a diagnostic on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent


def free_port() -> int:
    """Ask the kernel for a currently free TCP port (slightly racy, fine here)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def repro_env() -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_WORKER_SELF_DESTRUCT", None)
    return env


def repro_cmd(*args: str) -> List[str]:
    return [sys.executable, "-m", "repro.cli", *args]


def wait_for_http(url: str, timeout: float) -> None:
    deadline = time.time() + timeout
    while True:
        try:
            with urllib.request.urlopen(url, timeout=2.0):
                return
        except OSError:
            if time.time() >= deadline:
                raise RuntimeError(f"{url} did not come up within {timeout:.0f}s")
            time.sleep(0.2)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default="blowfish,mips")
    parser.add_argument("--lease-timeout", type=float, default=10.0)
    parser.add_argument("--timeout", type=float, default=900.0, help="overall budget (seconds)")
    parser.add_argument(
        "--no-crash", action="store_true", help="skip the worker crash/reassignment injection"
    )
    args = parser.parse_args(argv)

    env = repro_env()
    cache_port = free_port()
    coordinator_port = free_port()
    cache_url = f"http://127.0.0.1:{cache_port}"
    coordinator_url = f"http://127.0.0.1:{coordinator_port}"

    processes: List[subprocess.Popen] = []
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        distributed_cache = Path(tmp) / "distributed-cache"
        serial_cache = Path(tmp) / "serial-cache"
        try:
            cache_server = subprocess.Popen(
                repro_cmd(
                    "cache", "serve", "--cache-dir", str(distributed_cache),
                    "--port", str(cache_port),
                ),
                env=env,
            )
            processes.append(cache_server)
            wait_for_http(f"{cache_url}/healthz", 30.0)
            print(f"smoke: cache service up at {cache_url}", flush=True)

            worker_env = dict(env)
            if not args.no_crash:
                # Worker 1 crashes the first time it leases a sweep task;
                # reassignment must finish the run on worker 2.
                worker_env["REPRO_WORKER_SELF_DESTRUCT"] = "sweep:"
            workers = [
                subprocess.Popen(
                    repro_cmd(
                        "worker", "serve",
                        "--coordinator", coordinator_url,
                        "--cache-dir", cache_url,
                        "--name", f"smoke-{index}",
                        "--poll-wait", "2",
                    ),
                    env=worker_env if index == 1 else env,
                )
                for index in (1, 2)
            ]
            processes.extend(workers)

            report_args = [
                "report", "--json",
                "--benchmarks", args.benchmarks,
                "--cache-dir", cache_url,
                "--workers", f"127.0.0.1:{coordinator_port}",
                "--lease-timeout", str(args.lease_timeout),
            ]
            print(f"smoke: running distributed report ({args.benchmarks})", flush=True)
            started = time.time()
            distributed = subprocess.run(
                repro_cmd(*report_args),
                env=env, capture_output=True, text=True, timeout=args.timeout,
            )
            if distributed.returncode != 0:
                print(distributed.stderr, file=sys.stderr)
                print("smoke: FAIL — distributed report exited non-zero", file=sys.stderr)
                return 1
            print(f"smoke: distributed report done in {time.time() - started:.1f}s", flush=True)

            print("smoke: running cold serial report for comparison", flush=True)
            serial = subprocess.run(
                repro_cmd(
                    "report", "--json",
                    "--benchmarks", args.benchmarks,
                    "--cache-dir", str(serial_cache),
                ),
                env=env, capture_output=True, text=True,
                timeout=max(60.0, args.timeout - (time.time() - started)),
            )
            if serial.returncode != 0:
                print(serial.stderr, file=sys.stderr)
                print("smoke: FAIL — serial report exited non-zero", file=sys.stderr)
                return 1

            if distributed.stdout != serial.stdout:
                print("smoke: FAIL — distributed output differs from serial output", file=sys.stderr)
                for line_d, line_s in zip(
                    distributed.stdout.splitlines(), serial.stdout.splitlines()
                ):
                    if line_d != line_s:
                        print(f"  distributed: {line_d}\n  serial     : {line_s}", file=sys.stderr)
                        break
                return 1
            json.loads(distributed.stdout)  # well-formed, not just equal

            if not args.no_crash:
                crashed = workers[0].wait(timeout=30)
                if crashed != 17:
                    print(
                        f"smoke: FAIL — crash-injected worker exited {crashed}, expected 17 "
                        "(self-destruct never fired, so reassignment went unexercised)",
                        file=sys.stderr,
                    )
                    return 1
                print("smoke: worker 1 crashed as injected; run completed via reassignment")

            print("smoke: OK — distributed output is byte-identical to the serial run")
            return 0
        finally:
            for process in processes:
                if process.poll() is None:
                    process.terminate()
            for process in processes:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()


if __name__ == "__main__":
    sys.exit(main())
