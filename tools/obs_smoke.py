#!/usr/bin/env python3
"""Observability smoke: /metrics scrape + cluster status + traced report.

The end-to-end acceptance check of the telemetry subsystem (see
docs/OBSERVABILITY.md), in three acts:

1. **Services.** Starts one cache service and one coordinator on
   127.0.0.1, drives a little real traffic through both (register a
   worker, lease and complete a task, heartbeat, cache miss + put + hit),
   then scrapes ``GET /metrics`` from each and validates the Prometheus
   text exposition: parseable format, correct content type, and the
   minimum metric set a dashboard needs (task throughput, queue depth,
   worker liveness, lease latency, cache hits/misses/puts).
2. **Cluster status.** Runs ``repro cluster status`` against the live
   services and checks the summary reflects the traffic just driven.
3. **Tracing + profiling + history.** Runs one ``repro report`` with
   ``$REPRO_TRACE``, ``$REPRO_PROFILE`` and ``$REPRO_HISTORY`` set and
   one without, asserts the two stdout payloads are byte-identical
   (telemetry must be observe-only) and that the observed run is at most
   10% slower than the plain one (one retry soaks timing flakes), asserts
   the captured JSONL trace covers >= 95% of the executed task-graph
   nodes with valid parent links, and renders it through ``repro trace``
   (tree, Gantt, ``--summary`` and ``--critical-path`` — the critical
   path must cover >= 50% of the trace window).  The sampled profile must
   parse and render as a flamegraph (``repro profile --from``, written to
   ``--flame-out`` for CI artifacts), the history ledger must hold the
   run's record, and ``repro report --html`` under the same telemetry
   must emit the profile / trace-analytics / trends cards.

Used by the ``obs-smoke`` CI job; handy manually:

    python tools/obs_smoke.py --benchmarks blowfish

Exits 0 on success, 1 with a diagnostic on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.remote import protocol  # noqa: E402
from repro.eval.remote.cache_http import HTTPCacheBackend, make_cache_server  # noqa: E402
from repro.eval.remote.coordinator import Coordinator, start_coordinator_server  # noqa: E402
from repro.obs.cluster import metric_value, parse_prometheus  # noqa: E402

#: Every name a dashboard needs; the scrape must expose all of them.
REQUIRED_COORDINATOR_METRICS = (
    "repro_tasks_submitted_total",
    "repro_tasks_leased_total",
    "repro_tasks_completed_total",
    "repro_tasks_requeued_total",
    "repro_lease_latency_seconds_bucket",
    "repro_lease_latency_seconds_count",
    "repro_queue_depth",
    "repro_tasks_inflight",
    "repro_workers_live",
)
REQUIRED_CACHE_METRICS = (
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_puts_total",
    "repro_cache_entries",
    "repro_cache_bytes",
)


def fail(message: str) -> int:
    print(f"obs-smoke: FAIL — {message}", file=sys.stderr)
    return 1


def repro_env(**extra: str) -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_TRACE", None)  # each act opts in explicitly
    env.update(extra)
    return env


def repro_cmd(*args: str) -> List[str]:
    return [sys.executable, "-m", "repro.cli", *args]


def scrape(url: str) -> str:
    """GET *url* and validate the exposition headers + line format."""
    with urllib.request.urlopen(url, timeout=10.0) as response:
        content_type = response.headers.get("Content-Type", "")
        body = response.read().decode("utf-8")
    if not content_type.startswith("text/plain"):
        raise AssertionError(f"{url}: content type {content_type!r} is not text/plain")
    seen_help: set = set()
    for line in body.splitlines():
        if not line or line.startswith("# HELP "):
            if line.startswith("# HELP "):
                seen_help.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            name = line.split()[2]
            if name not in seen_help:
                raise AssertionError(f"{url}: TYPE for {name} before its HELP line")
            continue
        name = line.split("{")[0].split()[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
        if base not in seen_help:
            raise AssertionError(f"{url}: sample {name} has no preceding HELP/TYPE")
        value = line.rsplit(None, 1)[-1]
        if value != "+Inf":
            float(value)  # every sample value must be a number
    return body


def drive_traffic(coordinator: Coordinator, coordinator_url: str, cache_url: str) -> None:
    """Exercise each instrumented path once so every counter has moved."""
    registration = protocol.http_post_json(
        f"{coordinator_url}/workers/register", {"name": "obs-smoke"}, timeout=10.0
    )
    worker_id = registration["worker_id"]
    coordinator.submit({"task_id": "obs:demo", "kind": "runtime", "workload": "blowfish"})
    lease = protocol.http_post_json(
        f"{coordinator_url}/tasks/lease", {"worker_id": worker_id, "wait": 5.0}, timeout=20.0
    )
    task = lease.get("task") or {}
    if task.get("task_id") != "obs:demo":
        raise AssertionError(f"lease returned {task!r}, expected obs:demo")
    protocol.http_post_json(
        f"{coordinator_url}/workers/heartbeat",
        {"worker_id": worker_id, "tasks": ["obs:demo"], "trace_id": "f" * 32},
        timeout=10.0,
    )
    protocol.http_post_json(
        f"{coordinator_url}/tasks/complete",
        {
            "worker_id": worker_id, "task_id": "obs:demo", "ok": True,
            "value": 1, "in_cache": False, "start": time.time(), "end": time.time(),
        },
        timeout=10.0,
    )
    backend = HTTPCacheBackend(cache_url)
    key = "ab" * 32  # keys are 64 hex chars
    if backend.get_blob(key) is not None:
        raise AssertionError("fresh cache served a blob for an unknown key")
    backend.put_blob(key, "json", b'"payload"')
    stored = backend.get_blob(key)
    if stored is None or stored[1] != b'"payload"':
        raise AssertionError("cache round trip lost the payload")


def check_metrics(coordinator_url: str, cache_url: str) -> None:
    coordinator_text = scrape(f"{coordinator_url}/metrics")
    samples = parse_prometheus(coordinator_text)
    for name in REQUIRED_COORDINATOR_METRICS:
        if name not in samples:
            raise AssertionError(f"coordinator /metrics lacks {name}")
    if metric_value(samples, "repro_tasks_submitted_total") < 1:
        raise AssertionError("repro_tasks_submitted_total did not count the demo task")
    if metric_value(samples, "repro_tasks_completed_total", outcome="ok") < 1:
        raise AssertionError("repro_tasks_completed_total{outcome=ok} did not move")
    if metric_value(samples, "repro_workers_live") < 1:
        raise AssertionError("repro_workers_live does not reflect the registered worker")
    if metric_value(samples, "repro_lease_latency_seconds_count") < 1:
        raise AssertionError("lease latency histogram observed nothing")

    cache_text = scrape(f"{cache_url}/metrics")
    samples = parse_prometheus(cache_text)
    for name in REQUIRED_CACHE_METRICS:
        if name not in samples:
            raise AssertionError(f"cache /metrics lacks {name}")
    if metric_value(samples, "repro_cache_misses_total") < 1:
        raise AssertionError("repro_cache_misses_total did not count the probe miss")
    if metric_value(samples, "repro_cache_hits_total") < 1:
        raise AssertionError("repro_cache_hits_total did not count the round-trip hit")
    if metric_value(samples, "repro_cache_entries") < 1:
        raise AssertionError("repro_cache_entries gauge ignores the stored blob")
    print("obs-smoke: /metrics OK on both services", flush=True)


def check_cluster_status(coordinator_url: str, cache_url: str) -> None:
    result = subprocess.run(
        repro_cmd(
            "cluster", "status",
            "--coordinator", coordinator_url, "--cache", cache_url, "--json",
        ),
        env=repro_env(), capture_output=True, text=True, timeout=60.0,
    )
    if result.returncode != 0:
        raise AssertionError(f"repro cluster status exited {result.returncode}: {result.stderr}")
    summary = json.loads(result.stdout)
    if not summary.get("coordinator", {}).get("ok"):
        raise AssertionError(f"cluster status reports coordinator unhealthy: {summary}")
    if len(summary["coordinator"].get("workers") or []) < 1:
        raise AssertionError(f"cluster status lost the registered worker: {summary}")
    if not summary.get("cache", {}).get("ok"):
        raise AssertionError(f"cluster status reports cache unhealthy: {summary}")
    print("obs-smoke: repro cluster status OK", flush=True)


#: Observed (trace + profile + history) cold runs may cost at most this
#: much relative to a plain cold run; one retry soaks scheduler noise.
MAX_OVERHEAD_RATIO = 1.10


def _timed_report(benchmarks: str, cache_dir: Path, timeout: float,
                  env: Dict[str, str]) -> "tuple[float, subprocess.CompletedProcess]":
    start = time.perf_counter()
    result = subprocess.run(
        repro_cmd("report", "--json", "--benchmarks", benchmarks, "-j", "2",
                  "--cache-dir", str(cache_dir)),
        env=env, capture_output=True, text=True, timeout=timeout,
    )
    return time.perf_counter() - start, result


def check_traced_report(benchmarks: str, timeout: float,
                        flame_out: Optional[str] = None) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
        trace_file = Path(tmp) / "trace.jsonl"
        profile_file = Path(tmp) / "profile.jsonl"
        history_dir = Path(tmp) / "history"
        observed_env = repro_env(
            REPRO_TRACE=str(trace_file),
            REPRO_PROFILE=str(profile_file),
            REPRO_HISTORY=str(history_dir),
        )
        traced_seconds, traced = _timed_report(
            benchmarks, Path(tmp) / "cache-a", timeout, observed_env
        )
        if traced.returncode != 0:
            raise AssertionError(f"traced report exited {traced.returncode}: {traced.stderr}")
        plain_seconds, plain = _timed_report(
            benchmarks, Path(tmp) / "cache-b", timeout, repro_env()
        )
        if plain.returncode != 0:
            raise AssertionError(f"untraced report exited {plain.returncode}: {plain.stderr}")
        if traced.stdout != plain.stdout:
            raise AssertionError("traced report output differs from untraced output")
        print("obs-smoke: traced report byte-identical to untraced", flush=True)

        ratio = traced_seconds / max(plain_seconds, 1e-9)
        if ratio > MAX_OVERHEAD_RATIO:
            # One retry on fresh caches: CI machines are noisy and a single
            # descheduled second can swamp a short cold run.
            retry_traced, result = _timed_report(
                benchmarks, Path(tmp) / "cache-c", timeout, observed_env
            )
            if result.returncode != 0:
                raise AssertionError(f"retry traced report failed: {result.stderr}")
            retry_plain, result = _timed_report(
                benchmarks, Path(tmp) / "cache-d", timeout, repro_env()
            )
            if result.returncode != 0:
                raise AssertionError(f"retry untraced report failed: {result.stderr}")
            ratio = retry_traced / max(retry_plain, 1e-9)
            if ratio > MAX_OVERHEAD_RATIO:
                raise AssertionError(
                    f"telemetry overhead {ratio:.2f}x exceeds {MAX_OVERHEAD_RATIO:.2f}x "
                    f"(traced {retry_traced:.2f}s vs plain {retry_plain:.2f}s, "
                    f"first attempt {traced_seconds:.2f}s vs {plain_seconds:.2f}s)"
                )
        print(f"obs-smoke: telemetry overhead {ratio:.2f}x (budget "
              f"{MAX_OVERHEAD_RATIO:.2f}x)", flush=True)

        spans = [
            json.loads(line)
            for line in trace_file.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        if not spans:
            raise AssertionError("traced report wrote no spans")
        by_id = {span["span_id"]: span for span in spans}
        for span in spans:
            parent = span.get("parent_id")
            if parent is not None and parent not in by_id:
                raise AssertionError(f"span {span['name']} has dangling parent {parent}")
        graph = subprocess.run(
            repro_cmd("graph", "--json", "--benchmarks", benchmarks),
            env=repro_env(), capture_output=True, text=True, timeout=120.0,
        )
        node_ids = {task["id"] for task in json.loads(graph.stdout)["tasks"]}
        covered = {
            span["name"][len("task:"):]
            for span in spans
            if span["name"].startswith("task:")
        }
        coverage = len(node_ids & covered) / max(1, len(node_ids))
        if coverage < 0.95:
            missing = sorted(node_ids - covered)[:10]
            raise AssertionError(
                f"trace covers {coverage:.0%} of task-graph nodes (< 95%); missing {missing}"
            )
        print(f"obs-smoke: trace covers {coverage:.0%} of {len(node_ids)} nodes", flush=True)

        for view in ([], ["--gantt"]):
            render = subprocess.run(
                repro_cmd("trace", str(trace_file), *view),
                env=repro_env(), capture_output=True, text=True, timeout=60.0,
            )
            if render.returncode != 0 or "trace " not in render.stdout:
                raise AssertionError(
                    f"repro trace {' '.join(view)} failed: {render.stderr or render.stdout}"
                )
        print("obs-smoke: repro trace renders (tree + gantt)", flush=True)

        summary = subprocess.run(
            repro_cmd("trace", str(trace_file), "--summary", "--json"),
            env=repro_env(), capture_output=True, text=True, timeout=60.0,
        )
        if summary.returncode != 0:
            raise AssertionError(f"repro trace --summary failed: {summary.stderr}")
        payload = json.loads(summary.stdout)
        kinds = {row["kind"] for row in payload.get("summary", [])}
        if "compile" not in kinds:
            raise AssertionError(f"trace summary lacks compile spans (kinds: {sorted(kinds)})")
        if payload.get("scheduler_overhead", {}).get("runs", 0) < 1:
            raise AssertionError("trace summary saw no scheduler.run span")
        critical = subprocess.run(
            repro_cmd("trace", str(trace_file), "--critical-path", "--json"),
            env=repro_env(), capture_output=True, text=True, timeout=60.0,
        )
        if critical.returncode != 0:
            raise AssertionError(f"repro trace --critical-path failed: {critical.stderr}")
        path = json.loads(critical.stdout)["critical_path"]
        if not path.get("hops"):
            raise AssertionError("critical path has no hops")
        if path.get("coverage", 0.0) < 0.5:
            raise AssertionError(
                f"critical path covers {path.get('coverage', 0.0):.0%} of the "
                "trace window (< 50%)"
            )
        print(
            f"obs-smoke: trace analytics OK (critical path {len(path['hops'])} hops, "
            f"{path['coverage']:.0%} coverage)", flush=True,
        )

        records = [
            json.loads(line)
            for line in profile_file.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        if not records or any(rec.get("kind") != "profile" for rec in records):
            raise AssertionError(f"profile file malformed ({len(records)} records)")
        total_samples = sum(rec.get("samples", 0) for rec in records)
        if total_samples < 1:
            raise AssertionError("sampling profiler captured no samples on a cold report")
        flame_path = Path(flame_out) if flame_out else Path(tmp) / "flame.svg"
        flame = subprocess.run(
            repro_cmd("profile", "--from", str(profile_file), "--flame", str(flame_path)),
            env=repro_env(), capture_output=True, text=True, timeout=60.0,
        )
        if flame.returncode != 0:
            raise AssertionError(f"repro profile --from --flame failed: {flame.stderr}")
        if "<svg" not in flame_path.read_text(encoding="utf-8"):
            raise AssertionError(f"{flame_path} is not an SVG")
        print(
            f"obs-smoke: profile OK ({len(records)} process(es), {total_samples} samples, "
            f"flamegraph at {flame_path})", flush=True,
        )

        runs_file = history_dir / "runs.jsonl"
        if not runs_file.exists():
            raise AssertionError("observed report did not append to $REPRO_HISTORY")
        runs = [json.loads(line) for line in
                runs_file.read_text(encoding="utf-8").splitlines() if line.strip()]
        if not any(run.get("command") == "report" and
                   "wall_seconds" in run.get("metrics", {}) for run in runs):
            raise AssertionError(f"history ledger lacks the report record: {runs}")
        print("obs-smoke: run history ledger OK", flush=True)

        html_dir = Path(tmp) / "html"
        html_env = repro_env(
            REPRO_TRACE=str(Path(tmp) / "trace-html.jsonl"),
            REPRO_PROFILE=str(Path(tmp) / "profile-html.jsonl"),
            REPRO_HISTORY=str(history_dir),
        )
        # Fresh cache: a cold run is long enough for the sampler to
        # capture stacks, so the profile card is deterministically present.
        html_run = subprocess.run(
            repro_cmd("report", "--html", str(html_dir), "--benchmarks", benchmarks,
                      "-j", "2", "--cache-dir", str(Path(tmp) / "cache-html")),
            env=html_env, capture_output=True, text=True, timeout=timeout,
        )
        if html_run.returncode != 0:
            raise AssertionError(f"observed --html report failed: {html_run.stderr}")
        document = (html_dir / "report.html").read_text(encoding="utf-8")
        for section in ('id="trace-analytics"', 'id="profile"', 'id="trends"'):
            if section not in document:
                raise AssertionError(f"observed report.html lacks {section}")
        print("obs-smoke: observed report.html renders all telemetry cards", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default="blowfish")
    parser.add_argument("--timeout", type=float, default=600.0, help="per-report budget (seconds)")
    parser.add_argument(
        "--flame-out",
        metavar="FILE.svg",
        help="also keep the rendered flamegraph here (CI artifact upload)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-obs-services-") as tmp:
        cache_server = make_cache_server(Path(tmp) / "store", port=0)
        threading.Thread(target=cache_server.serve_forever, daemon=True).start()
        coordinator = Coordinator(lease_timeout=30.0)
        coordinator_server = start_coordinator_server(coordinator, port=0)
        cache_url = cache_server.url
        coordinator_url = coordinator_server.url
        print(f"obs-smoke: services up (cache {cache_url}, coordinator {coordinator_url})",
              flush=True)
        try:
            drive_traffic(coordinator, coordinator_url, cache_url)
            check_metrics(coordinator_url, cache_url)
            check_cluster_status(coordinator_url, cache_url)
        except AssertionError as exc:
            return fail(str(exc))
        finally:
            coordinator_server.shutdown()
            cache_server.shutdown()

    try:
        check_traced_report(args.benchmarks, args.timeout, flame_out=args.flame_out)
    except AssertionError as exc:
        return fail(str(exc))
    print("obs-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
