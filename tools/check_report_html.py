#!/usr/bin/env python3
"""CI gate for ``repro report --html``: complete, self-contained, cacheable.

Asserts the produced ``report.html``

* contains **all six thesis figures** (6.1-6.6), the exploration section
  (frontier scatter + search-progress figures and the best-found table)
  plus both tables as inline sections (requires the full benchmark set, or
  at least blowfish+mips);
* is **self-contained** — no executable ``<script>``, no ``<link>``, no
  ``src=`` attributes, nothing to fetch.  The only ``<script`` form
  allowed is the inert data island ``<script type="application/json"``
  the report embeds its raw artefact numbers in (browsers never execute
  ``application/json`` content);
* carries the run-metadata card (configuration hash + cache-hit stats)
  and the embedded ``report-data`` JSON island;
* with ``--benchmark-pages a,b,...``: each ``benchmark-<name>.html``
  drill-down page exists beside the report, passes the same
  self-containment scan, and embeds its ``benchmark-data`` island.

With ``--expect-warm`` it additionally asserts the run re-rendered nothing
("0 rendered" in the metadata card) — the render-task caching guarantee.

Usage: ``python tools/check_report_html.py out/report.html
[--expect-warm] [--benchmark-pages blowfish,mips]``
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REQUIRED_FIGURES = ("6.1", "6.2", "6.3", "6.4", "6.5", "6.6", "explore", "explore-progress")
REQUIRED_SECTIONS = ("table_6.1", "table_6.2", "metadata", "exploration")
FORBIDDEN_MARKUP = ("<link", "src=", "@import", "http-equiv")

#: The one ``<script`` form allowed: the inert raw-data island.
DATA_ISLAND = '<script type="application/json"'


def scan_self_contained(document: str, label: str) -> list:
    """Failure messages for external assets or executable script content."""
    failures = []
    for needle in FORBIDDEN_MARKUP:
        if needle in document:
            failures.append(f"{label} is not self-contained: found {needle!r}")
    # Every <script occurrence must be the data island — anything else
    # (bare <script>, type="text/javascript", a module) is executable.
    executable = document.count("<script") - document.count(DATA_ISLAND)
    if executable:
        failures.append(
            f"{label} carries {executable} executable <script> tag(s) "
            f"(only {DATA_ISLAND!r} data islands are allowed)"
        )
    return failures


def check(
    path: Path, expect_warm: bool = False, benchmark_pages: tuple = ()
) -> list:
    """Return a list of failure messages (empty = the report passes)."""
    failures = []
    if not path.is_file():
        return [f"{path} does not exist"]
    document = path.read_text(encoding="utf-8")
    for figure_id in REQUIRED_FIGURES:
        if f'id="figure-{figure_id}"' not in document:
            failures.append(f"figure {figure_id} missing from the report")
    for section in REQUIRED_SECTIONS:
        if f'id="{section}"' not in document:
            failures.append(f"section '{section}' missing from the report")
    failures.extend(scan_self_contained(document, "report"))
    if 'id="report-data"' not in document:
        failures.append("embedded report-data JSON island missing")
    if "configuration hash" not in document:
        failures.append("run metadata (configuration hash) missing")
    if expect_warm and "0 rendered" not in document:
        failures.append("expected a warm run (0 re-renders), but renders executed")
    for benchmark in benchmark_pages:
        page_path = path.parent / f"benchmark-{benchmark}.html"
        if not page_path.is_file():
            failures.append(f"drill-down page {page_path} does not exist")
            continue
        page = page_path.read_text(encoding="utf-8")
        failures.extend(scan_self_contained(page, f"benchmark-{benchmark}.html"))
        if 'id="benchmark-data"' not in page:
            failures.append(f"benchmark-{benchmark}.html lacks its benchmark-data island")
        if f'id="benchmark-{benchmark}.html"' not in document and (
            f'href="benchmark-{benchmark}.html"' not in document
        ):
            failures.append(f"report does not link to benchmark-{benchmark}.html")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="path to report.html")
    parser.add_argument(
        "--expect-warm",
        action="store_true",
        help="also require the run to have re-rendered nothing (cache warm)",
    )
    parser.add_argument(
        "--benchmark-pages",
        default="",
        help="comma-separated benchmark names whose drill-down pages must "
        "exist beside the report and pass the same self-containment scan",
    )
    args = parser.parse_args(argv)
    pages = tuple(n.strip() for n in args.benchmark_pages.split(",") if n.strip())
    failures = check(args.report, expect_warm=args.expect_warm, benchmark_pages=pages)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    size_kib = args.report.stat().st_size / 1024
    extra = f", {len(pages)} drill-down pages" if pages else ""
    print(
        f"ok: {args.report} passes ({size_kib:.0f} KiB, all figures inline, "
        f"no external assets{extra})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
