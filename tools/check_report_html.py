#!/usr/bin/env python3
"""CI gate for ``repro report --html``: complete, self-contained, cacheable.

Asserts the produced ``report.html``

* contains **all six thesis figures** (6.1-6.6), the exploration section
  (frontier scatter + search-progress figures and the best-found table)
  plus both tables as inline sections (requires the full benchmark set, or
  at least blowfish+mips);
* is **self-contained** — no ``<script>``, no ``<link>``, no ``src=``
  attributes, nothing to fetch;
* carries the run-metadata card (configuration hash + cache-hit stats).

With ``--expect-warm`` it additionally asserts the run re-rendered nothing
("0 rendered" in the metadata card) — the render-task caching guarantee.

Usage: ``python tools/check_report_html.py out/report.html [--expect-warm]``
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REQUIRED_FIGURES = ("6.1", "6.2", "6.3", "6.4", "6.5", "6.6", "explore", "explore-progress")
REQUIRED_SECTIONS = ("table_6.1", "table_6.2", "metadata", "exploration")
FORBIDDEN_MARKUP = ("<script", "<link", "src=", "@import", "http-equiv")


def check(path: Path, expect_warm: bool = False) -> list:
    """Return a list of failure messages (empty = the report passes)."""
    failures = []
    if not path.is_file():
        return [f"{path} does not exist"]
    document = path.read_text(encoding="utf-8")
    for figure_id in REQUIRED_FIGURES:
        if f'id="figure-{figure_id}"' not in document:
            failures.append(f"figure {figure_id} missing from the report")
    for section in REQUIRED_SECTIONS:
        if f'id="{section}"' not in document:
            failures.append(f"section '{section}' missing from the report")
    for needle in FORBIDDEN_MARKUP:
        if needle in document:
            failures.append(f"report is not self-contained: found {needle!r}")
    if "configuration hash" not in document:
        failures.append("run metadata (configuration hash) missing")
    if expect_warm and "0 rendered" not in document:
        failures.append("expected a warm run (0 re-renders), but renders executed")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="path to report.html")
    parser.add_argument(
        "--expect-warm",
        action="store_true",
        help="also require the run to have re-rendered nothing (cache warm)",
    )
    args = parser.parse_args(argv)
    failures = check(args.report, expect_warm=args.expect_warm)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    size_kib = args.report.stat().st_size / 1024
    print(f"ok: {args.report} passes ({size_kib:.0f} KiB, all figures inline, no external assets)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
