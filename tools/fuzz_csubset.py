#!/usr/bin/env python3
"""Seeded generative fuzzer for the supported C subset.

Generates random-but-deterministic C programs (fixed-seed
:class:`random.Random`, no wall-clock anywhere) inside the frontend's
supported subset — integer scalars and arrays, helper functions, ``for`` /
``while`` / ``if`` / ``switch`` / ternary, full operator mix with shift
amounts masked to ``& 31`` and divisors forced odd so no UB-shaped trap
depends on the generator's luck — then pushes each program through the
whole pipeline and differentially checks it:

1. the frontend must accept it without diagnostics (a rejection or crash is
   a finding: the generator stays inside the documented subset);
2. the unoptimised-module interpretation (reference) must equal the fully
   optimised pipeline's functional outputs;
3. the timing replay's output stream must equal the interpreter's under the
   software-only, hybrid and hardware-heavy configurations, with zero
   forced events (the :mod:`repro.ingest.difftest` invariants).

Usage::

    python tools/fuzz_csubset.py --count 50 --seed 0            # smoke batch
    python tools/fuzz_csubset.py --seed 7 --emit-corpus DIR     # minimized survivors

``--emit-corpus`` delta-minimizes each surviving program (line-granular,
re-checking the full differential pipeline after every removal) and writes
it to ``DIR/fuzz_<seed>_<index>.c`` — the workflow that grew
``tests/corpus/``.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from typing import List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.config import CompilerConfig  # noqa: E402
from repro.core.compiler import TwillCompiler  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.frontend.diagnostics import parse_with_diagnostics  # noqa: E402
from repro.ingest.evaluate import compute_ingest_report  # noqa: E402

#: Interpreter step budget per fuzzed program — generous for bounded loops,
#: small enough that a runaway program fails fast.
MAX_STEPS = 200_000


# ---------------------------------------------------------------------------
# program generator
# ---------------------------------------------------------------------------


class _Gen:
    """One deterministic random C program (all state derives from the seed)."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.globals: List[str] = []
        self.helpers: List[str] = []
        self.helper_sigs: List[Tuple[str, int]] = []  # (name, arity)
        self.array_names: List[str] = []
        self.array_sizes: dict = {}

    # -- expressions ---------------------------------------------------------

    def _int_expr(self, names: List[str], depth: int = 0) -> str:
        rng = self.rng
        if depth >= 3 or rng.random() < 0.3:
            if names and rng.random() < 0.6:
                return rng.choice(names)
            return str(rng.randint(0, 1000))
        kind = rng.randrange(8)
        a = self._int_expr(names, depth + 1)
        b = self._int_expr(names, depth + 1)
        if kind == 0:
            op = rng.choice(["+", "-", "*", "^", "&", "|"])
            return f"({a} {op} {b})"
        if kind == 1:
            op = rng.choice(["<<", ">>"])
            return f"({a} {op} (({b}) & 15))"
        if kind == 2:
            op = rng.choice(["/", "%"])
            return f"({a} {op} ((({b}) & 255) | 1))"
        if kind == 3:
            op = rng.choice(["<", ">", "<=", ">=", "==", "!="])
            return f"({a} {op} {b})"
        if kind == 4:
            return f"(({a} != 0) ? {b} : {self._int_expr(names, depth + 1)})"
        if kind == 5 and self.array_names:
            arr = rng.choice(self.array_names)
            return f"{arr}[(({a}) & {self.array_sizes[arr] - 1})]"
        if kind == 6 and self.helper_sigs:
            name, arity = rng.choice(self.helper_sigs)
            args = ", ".join(self._int_expr(names, depth + 1) for _ in range(arity))
            return f"{name}({args})"
        return f"(~({a}) + ({b}))"

    # -- statements ------------------------------------------------------------

    def _statements(self, reads: List[str], writes: List[str], depth: int, count: int) -> List[str]:
        # `reads` includes enclosing loop counters; `writes` never does, so a
        # generated body can't reset its own loop variable into an infinite loop.
        rng = self.rng
        pad = "  " * depth
        out: List[str] = []
        for _ in range(count):
            kind = rng.randrange(10)
            if kind < 4 and writes:
                target = rng.choice(writes)
                op = rng.choice(["=", "+=", "^=", "="])
                out.append(f"{pad}{target} {op} {self._int_expr(reads)};")
            elif kind == 4 and self.array_names:
                arr = rng.choice(self.array_names)
                idx = f"(({self._int_expr(reads)}) & {self.array_sizes[arr] - 1})"
                out.append(f"{pad}{arr}[{idx}] = {self._int_expr(reads)};")
            elif kind == 5 and depth < 3:
                var = f"i{depth}_{rng.randrange(1000)}"
                bound = rng.randint(2, 8)
                out.append(f"{pad}for ({var} = 0; {var} < {bound}; {var}++) {{")
                out.extend(self._statements(reads + [var], writes, depth + 1, rng.randint(1, 2)))
                out.append(f"{pad}}}")
                self._loop_vars.append(var)
            elif kind == 6 and depth < 3:
                out.append(f"{pad}if ({self._int_expr(reads)} > {rng.randint(0, 100)}) {{")
                out.extend(self._statements(reads, writes, depth + 1, rng.randint(1, 2)))
                if rng.random() < 0.5:
                    out.append(f"{pad}}} else {{")
                    out.extend(self._statements(reads, writes, depth + 1, 1))
                out.append(f"{pad}}}")
            elif kind == 7 and reads and depth < 3:
                sel = self._int_expr(reads)
                out.append(f"{pad}switch (({sel}) & 3) {{")
                for case in range(rng.randint(2, 4)):
                    out.append(f"{pad}case {case}:")
                    out.extend(self._statements(reads, writes, depth + 1, 1))
                    out.append(f"{pad}  break;")
                out.append(f"{pad}default:")
                out.extend(self._statements(reads, writes, depth + 1, 1))
                out.append(f"{pad}  break;")
                out.append(f"{pad}}}")
            elif kind == 8 and reads:
                out.append(f"{pad}print_int({rng.choice(reads)});")
            else:
                target = rng.choice(writes) if writes else None
                if target is None:
                    continue
                out.append(f"{pad}{target} = {target} + 1;")
        return out

    # -- whole program ----------------------------------------------------------

    def generate(self) -> str:
        rng = self.rng
        self._loop_vars: List[str] = []
        lines: List[str] = ["/* generated by tools/fuzz_csubset.py */"]

        for index in range(rng.randint(0, 2)):
            size = rng.choice([4, 8, 16])
            name = f"tab{index}"
            values = ", ".join(str(rng.randint(0, 255)) for _ in range(size))
            lines.append(f"int {name}[{size}] = {{{values}}};")
            self.array_names.append(name)
            self.array_sizes[name] = size

        for index in range(rng.randint(0, 2)):
            arity = rng.randint(1, 3)
            name = f"helper{index}"
            params = ", ".join(f"int p{i}" for i in range(arity))
            body_names = [f"p{i}" for i in range(arity)]
            expr = self._int_expr(body_names)
            lines.append(f"int {name}({params}) {{")
            lines.append(f"  return {expr};")
            lines.append("}")
            self.helper_sigs.append((name, arity))

        nvars = rng.randint(2, 4)
        names = [f"v{i}" for i in range(nvars)]
        lines.append("int main(void) {")
        for name in names:
            lines.append(f"  int {name} = {rng.randint(0, 100)};")
        body = self._statements(names, names, 1, rng.randint(3, 6))
        for var in sorted(set(self._loop_vars)):
            lines.append(f"  int {var};")
        lines.extend(body)
        for name in names:
            lines.append(f"  print_int({name});")
        checksum = " ^ ".join(names)
        lines.append(f"  print_int({checksum});")
        lines.append(f"  return ({checksum}) & 255;")
        lines.append("}")
        return "\n".join(lines) + "\n"


def generate_program(seed: int) -> str:
    """The deterministic program for one seed."""
    return _Gen(random.Random(seed)).generate()


# ---------------------------------------------------------------------------
# differential pipeline check
# ---------------------------------------------------------------------------


def check_program(source: str, name: str = "fuzzed", min_outputs: int = 0) -> Optional[str]:
    """Run the full differential pipeline on *source*.

    Returns ``None`` when every check passes, otherwise a one-line failure
    description (the fuzzing finding).  ``min_outputs`` lets the minimizer
    insist the program still actually prints something.
    """
    unit, diagnostics = parse_with_diagnostics(source, f"{name}.c")
    if diagnostics or unit is None:
        return "frontend rejected: " + "; ".join(d.format() for d in diagnostics[:3])

    config = CompilerConfig()
    config.max_interpreter_steps = MAX_STEPS
    report = compute_ingest_report(name, source, f"{name}.c", config)
    if not report["ok"]:
        messages = "; ".join(d["message"] for d in report["diagnostics"][:3])
        return f"reference interpretation failed: {messages}"
    reference = [int(v) for v in report["outputs"]]
    if len(reference) < min_outputs:
        return f"program prints {len(reference)} value(s), need {min_outputs}"

    try:
        result = TwillCompiler(config).compile_and_simulate(source, name=name)
    except ReproError as exc:
        return f"pipeline crashed: {type(exc).__name__}: {exc}"

    if list(result.execution.outputs) != reference:
        return (
            "optimised pipeline outputs diverge from the unoptimised reference "
            f"({list(result.execution.outputs)[:4]} vs {reference[:4]})"
        )
    trace_events = len(result.execution.trace.events)
    for label, attr in (
        ("software_only", "pure_software"),
        ("hybrid", "twill"),
        ("hardware_heavy", "pure_hardware"),
    ):
        timing = getattr(result.system, attr).timing
        if list(timing.replay_outputs) != reference:
            return f"{label}: replayed output stream diverges from the interpreter"
        if timing.events != trace_events:
            return f"{label}: replay timed {timing.events} of {trace_events} events"
        if timing.forced_events != 0:
            return f"{label}: {timing.forced_events} forced event(s) in the replay"
    return None


# ---------------------------------------------------------------------------
# minimization
# ---------------------------------------------------------------------------


def _still_interesting(source: str) -> bool:
    """A minimization candidate must still pass the whole pipeline and print."""
    unit, diagnostics = parse_with_diagnostics(source)
    if diagnostics or unit is None:
        return False
    if "print_int" not in source:
        return False
    return check_program(source, name="minimized", min_outputs=4) is None


def minimize(source: str) -> str:
    """Line-granular greedy delta minimization of a *surviving* program.

    Repeatedly tries dropping line chunks (halving chunk sizes down to one
    line); a removal is kept only when the remainder still parses cleanly,
    runs, prints, and passes every differential check.  Deterministic: scan
    order is positional, no randomness.
    """
    lines = source.splitlines()
    chunk = max(1, len(lines) // 2)
    while chunk >= 1:
        changed = True
        while changed:
            changed = False
            index = 0
            while index < len(lines):
                candidate = lines[:index] + lines[index + chunk :]
                text = "\n".join(candidate) + "\n"
                if candidate and _still_interesting(text):
                    lines = candidate
                    changed = True
                else:
                    index += chunk
        chunk //= 2
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    """Fuzz a batch of programs; optionally emit minimized survivors."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=50, help="programs to generate (default: 50)")
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed (default: 0)")
    parser.add_argument(
        "--emit-corpus",
        metavar="DIR",
        help="minimize each surviving program and write it to DIR/fuzz_<seed>_<i>.c",
    )
    parser.add_argument(
        "--keep", type=int, default=None, metavar="N",
        help="with --emit-corpus: stop after N emitted survivors",
    )
    parser.add_argument("--quiet", action="store_true", help="only print the final summary")
    args = parser.parse_args(argv)

    failures: List[Tuple[int, str]] = []
    emitted = 0
    for index in range(args.count):
        seed = args.seed * 1_000_003 + index
        source = generate_program(seed)
        finding = check_program(source, name=f"fuzz_{seed}")
        if finding is not None:
            failures.append((seed, finding))
            print(f"[{index + 1}/{args.count}] seed {seed}: FAIL — {finding}")
            continue
        if not args.quiet:
            print(f"[{index + 1}/{args.count}] seed {seed}: ok ({len(source.splitlines())} lines)")
        if args.emit_corpus and (args.keep is None or emitted < args.keep):
            os.makedirs(args.emit_corpus, exist_ok=True)
            small = minimize(source)
            path = os.path.join(args.emit_corpus, f"fuzz_{args.seed}_{index}.c")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(f"/* fuzz survivor: base seed {args.seed}, index {index} */\n")
                handle.write(small)
            emitted += 1
            print(f"  -> minimized to {len(small.splitlines())} lines: {path}")

    print(
        f"fuzzed {args.count} programs (base seed {args.seed}): "
        f"{args.count - len(failures)} passed, {len(failures)} failed"
        + (f", {emitted} corpus files emitted" if args.emit_corpus else "")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
