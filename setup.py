"""Packaging for the Twill reproduction.

All metadata lives here (the project deliberately ships no ``pyproject.toml``
so that ``pip install -e .`` works in fully offline environments, where the
``wheel`` package needed for PEP 660 editable installs is unavailable and pip
falls back to the legacy ``setup.py develop`` code path).

Installing registers the ``repro`` console script (``repro --help``); the
package itself has no runtime dependencies beyond the standard library.
"""

from setuptools import find_packages, setup

setup(
    name="twill-repro",
    version="0.3.0",
    description=(
        "Reproduction of Twill: a hybrid microcontroller/FPGA framework for "
        "parallelizing single-threaded C programs (Gallatin, 2014)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
