#!/usr/bin/env python3
"""Run the full CHStone-style evaluation and print every table and figure.

This is the scripted version of the benchmark harness (equivalent to the
``repro report`` CLI command): it compiles all eight workloads, checks their
outputs against the Python references, and prints the reproduction of Tables
6.1/6.2 and Figures 6.1-6.6 plus the headline summary.

Usage:  python examples/chstone_sweep.py [--parallel N] [--no-cache]

Compiled artefacts are cached under ``.repro_cache/`` (see docs/CACHING.md),
so a second run completes in a fraction of the cold wall time; ``--parallel``
fans the cold compiles out over N worker processes.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.eval import (
    EvaluationHarness,
    figure_6_1,
    figure_6_2,
    figure_6_3,
    figure_6_4,
    figure_6_5,
    figure_6_6,
    summary,
    table_6_1,
    table_6_2,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parallel", type=int, metavar="N", help="compile N workloads concurrently")
    parser.add_argument("--no-cache", action="store_true", help="disable the on-disk artifact cache")
    args = parser.parse_args()

    started = time.time()
    harness = EvaluationHarness(use_cache=not args.no_cache)
    print("Compiling and simulating all eight workloads...\n")
    for run in harness.run_all(parallel=args.parallel):
        status = "ok" if run.functional_outputs_match() else "MISMATCH"
        print(f"  {run.name:10s} functional outputs: {status}")
    print()

    for generator in (table_6_1, table_6_2, figure_6_1, figure_6_2, figure_6_3, figure_6_4, figure_6_5, figure_6_6):
        print(generator(harness)["table"])
        print()
    print(summary(harness)["table"])
    print(f"\ntotal wall time: {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
