#!/usr/bin/env python3
"""Explore how the targeted HW/SW split point and queue geometry affect one benchmark.

Reproduces the methodology behind Figures 6.3-6.6 for a single workload of
your choice (default: blowfish, the benchmark the thesis singles out for its
partitioning pathology), so you can see where the crossover points fall.

Usage:  python examples/partition_explorer.py [workload-name]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.config import RuntimeConfig
from repro.core.report import format_result_table
from repro.eval import EvaluationHarness


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "blowfish"
    harness = EvaluationHarness()
    run = harness.run(name)
    baseline_sw = run.result.system.pure_software.cycles
    baseline_hw = run.result.system.pure_hardware.cycles

    print(f"=== {name}: pure SW {baseline_sw:,.0f} cycles, pure HW {baseline_hw:,.0f} cycles ===\n")

    rows = []
    for split in (0.05, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75):
        data = harness.twill_cycles_with_split(name, split)
        rows.append(
            [split, data["cycles"], int(data["queues"]), baseline_sw / data["cycles"], baseline_hw / data["cycles"]]
        )
    print(
        format_result_table(
            ["SW share target", "Twill cycles", "queues", "speedup vs SW", "speedup vs HW"],
            rows,
            title=f"{name}: targeted partition split sweep (Figures 6.3/6.4 methodology)",
        )
    )
    print()

    rows = []
    for latency in (2, 8, 32, 128):
        for depth in (2, 8, 32):
            cycles = harness.twill_cycles_with_runtime(name, RuntimeConfig(queue_latency=latency, queue_depth=depth))
            rows.append([latency, depth, cycles, baseline_sw / cycles])
    print(
        format_result_table(
            ["queue latency", "queue depth", "Twill cycles", "speedup vs SW"],
            rows,
            title=f"{name}: queue geometry sweep (Figures 6.5/6.6 methodology)",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
