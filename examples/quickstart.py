#!/usr/bin/env python3
"""Quickstart: compile a single-threaded C program with Twill and simulate it.

Runs the whole pipeline — C front end, LLVM-style passes, DSWP thread
extraction, LegUp-style HLS, and the hybrid timing simulation — on a small
image-convolution kernel, then prints the per-configuration report.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import CompilerConfig, TwillCompiler

SOURCE = """
/* 1-D convolution followed by thresholding: a classic streaming pipeline. */
int signal[96];
int kernel[5] = {1, 4, 6, 4, 1};
int filtered[96];
int events[96];

int main(void) {
  int i; int k; int count = 0;
  for (i = 0; i < 96; i++) { signal[i] = ((i * 37) % 101) - 50; }
  for (i = 2; i < 94; i++) {
    int acc = 0;
    for (k = 0; k < 5; k++) { acc += signal[i + k - 2] * kernel[k]; }
    filtered[i] = acc / 16;
  }
  for (i = 0; i < 96; i++) {
    events[i] = filtered[i] > 10 ? 1 : 0;
    count += events[i];
  }
  print_int(count);
  return count;
}
"""


def main() -> int:
    compiler = TwillCompiler(CompilerConfig())
    result = compiler.compile_and_simulate(SOURCE, name="convolution")

    print("=== Twill quickstart: 1-D convolution pipeline ===\n")
    print(result.report())
    print()

    print("Per-function DSWP partitioning:")
    for fn_name, fp in result.dswp.partitioning.functions.items():
        parts = ", ".join(
            f"{p.kind.value}:{len(p.instructions)} insts" for p in fp.partitions if p.instructions
        )
        print(f"  {fn_name}: {parts}")

    print("\nThread timelines (Twill configuration):")
    for thread_id, timeline in sorted(result.system.twill.timing.threads.items()):
        print(
            f"  thread {thread_id:2d} [{timeline.spec.domain.value}] {timeline.spec.label:16s}"
            f" busy {timeline.busy_cycles:10.0f} cycles, finished at {timeline.finish_time:10.0f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
