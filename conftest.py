"""Repository-level pytest configuration.

Makes the ``repro`` package importable directly from the source tree so the
test and benchmark suites work even in fully offline environments where
``pip install -e .`` cannot build an editable wheel.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
